"""Comms-avoiding worker-side reduction for streamed campaigns.

The default chunk transport ships every chunk's full
``[n_chunk, n_samples]`` trace block back to the parent, which folds it
into online accumulators — O(traces) IPC for an answer that is a
function of O(samples x hypotheses) sufficient statistics.  A
:class:`ChunkFold` inverts that: the *worker* folds its chunk into a
fresh accumulator and ships only the accumulator's compact
``state()`` dict; the parent merges the states **in chunk order**.

Why chunk order matters: merging a single-chunk accumulator replays
exactly the combine step ``update`` would have run on that chunk (the
state carries precisely the chunk moments ``update`` computes), so a
parent-side merge chain over per-chunk states is *bit-identical* to the
serial fold — but only for the serial association
``((c0 + c1) + c2) + c3``.  Workers therefore never pre-merge
neighbouring chunks; they return one state per chunk and the parent
owns the fold order.

:class:`FoldCodec` is the transport half: a picklable object installed
on the :class:`~repro.backends.base.BackendContext` that backends call
worker-side to encode a chunk's :class:`~repro.power.acquisition.TraceSet`
into its fold state before it crosses the process boundary.  See
``docs/backends.md`` ("Reduction modes") for the full contract.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.backends.base import ChunkTask
from repro.campaigns.accumulators import (
    CpaAccumulator,
    CpaBudgetSnapshots,
    OnlineMeanVar,
    OnlineTTestAccumulator,
)
from repro.power.acquisition import TraceSet
from repro.sca.ttest import TVLA_THRESHOLD

#: low/high Hamming-weight tails of an 8-bit intermediate (HW == 4 is
#: dropped), matching :data:`repro.sweeps.metrics.T_SPLIT`.
HW_T_SPLIT = (3, 5)


class ChunkFold(abc.ABC):
    """How one campaign's statistics fold, split across processes.

    A fold must be **picklable** (it ships to workers) and **pure**: the
    state returned for a chunk may depend only on the chunk's traces and
    inputs, never on fold-local mutation — a retried chunk recomputes
    its state from scratch and must reproduce it exactly.
    """

    @abc.abstractmethod
    def create(self) -> Any:
        """A fresh parent-side accumulator to merge chunk states into."""

    @abc.abstractmethod
    def fold_chunk(self, task: ChunkTask, trace_set: TraceSet) -> Any:
        """Worker-side: fold one chunk into a compact, picklable state."""

    @abc.abstractmethod
    def merge_state(self, accumulator: Any, task: ChunkTask, state: Any) -> Any:
        """Parent-side: merge one chunk's state, in chunk order."""

    def freeze(self, accumulator: Any) -> Any:
        """The accumulator as a checkpointable state (default: itself)."""
        return accumulator

    def thaw(self, frozen: Any) -> Any:
        """Rebuild an accumulator from :meth:`freeze` output."""
        return frozen


@dataclass(frozen=True)
class FoldCodec:
    """Worker-side chunk codec: trace sets out, fold states back."""

    fold: ChunkFold

    def encode(self, task: ChunkTask, trace_set: TraceSet, parent_path):
        return self.fold.fold_chunk(task, trace_set)


def _chunk_plaintexts(trace_set: TraceSet, block: int | None) -> np.ndarray:
    """The chunk's per-trace AES state bytes (the CPA plaintexts)."""
    if block is None:
        from repro.crypto.aes_asm import LAYOUT

        block = LAYOUT.state
    return trace_set.inputs.mem_bytes[block]


@dataclass(frozen=True)
class TraceMeanVarFold(ChunkFold):
    """Per-sample mean/variance of the trace matrix — model-free.

    The minimal statistics-only fold: a chunk's sufficient statistics
    are a count plus two ``n_samples`` float64 vectors, whatever the
    chunk size.  Works on any campaign (no crypto model involved),
    which makes it the fold of choice for generic exactness and chaos
    tests and for quick power-level sanity checks.
    """

    def create(self) -> OnlineMeanVar:
        return OnlineMeanVar()

    def fold_chunk(self, task: ChunkTask, trace_set: TraceSet) -> dict:
        part = OnlineMeanVar()
        part.update(trace_set.traces)
        return part.state()

    def merge_state(self, accumulator, task, state):
        accumulator.merge(OnlineMeanVar.from_state(state))
        return accumulator

    def freeze(self, accumulator):
        return accumulator.state()

    def thaw(self, frozen):
        return OnlineMeanVar.from_state(frozen)


@dataclass(frozen=True)
class SboxCpaFold(ChunkFold):
    """Figure 3's 256-guess HW(SubBytes out) CPA, folded worker-side.

    Reproduces the parent-side fold byte for byte: each chunk's model
    matrix is evaluated against the chunk's own plaintext slice (the
    worker holds exactly that slice as ``trace_set.inputs``), so the
    per-chunk accumulator state equals what the serial fold's ``update``
    would have combined.
    """

    byte_index: int
    guesses: tuple = tuple(range(256))
    #: memory block holding the AES state (default: the ASM layout's)
    state_block: int | None = None

    def create(self) -> CpaAccumulator:
        return CpaAccumulator(self.guesses)

    def fold_chunk(self, task: ChunkTask, trace_set: TraceSet) -> dict:
        from repro.sca.models import hw_sbox_model

        plaintexts = _chunk_plaintexts(trace_set, self.state_block)
        part = CpaAccumulator(self.guesses)
        part.update(
            trace_set.traces,
            lambda guess: hw_sbox_model(plaintexts, self.byte_index, guess),
        )
        return part.state()

    def merge_state(self, accumulator, task, state):
        accumulator.merge(CpaAccumulator.from_state(state))
        return accumulator

    def freeze(self, accumulator):
        return accumulator.state()

    def thaw(self, frozen):
        return CpaAccumulator.from_state(frozen)


@dataclass(frozen=True)
class SboxCpaBudgetFold(ChunkFold):
    """Budgeted CPA snapshots (success curves), folded worker-side.

    Workers fold in *deferred* mode — one fresh accumulator per
    budget-split sub-range, never pre-merged — so the parent's in-order
    merge replays the serial combine sequence exactly and every budget
    snapshot stays chunk-aligned and byte-identical.
    """

    byte_index: int
    budgets: tuple
    guesses: tuple = tuple(range(256))
    state_block: int | None = None

    def create(self) -> CpaBudgetSnapshots:
        return CpaBudgetSnapshots(self.budgets, self.guesses)

    def fold_chunk(self, task: ChunkTask, trace_set: TraceSet) -> dict:
        from repro.sca.models import hw_sbox_model

        plaintexts = _chunk_plaintexts(trace_set, self.state_block)
        part = CpaBudgetSnapshots(
            self.budgets, self.guesses, start=task.lo, defer=True
        )
        part.update(
            trace_set.traces,
            lambda guess: hw_sbox_model(plaintexts, self.byte_index, guess),
        )
        return part.state()

    def merge_state(self, accumulator, task, state):
        accumulator.merge(CpaBudgetSnapshots.from_state(state))
        return accumulator

    def freeze(self, accumulator):
        return accumulator.state()

    def thaw(self, frozen):
        return CpaBudgetSnapshots.from_state(frozen)


@dataclass(frozen=True)
class SboxTTestFold(ChunkFold):
    """TVLA-style Welch t-test between HW(SubBytes out) tails.

    The model-light leakage detector over the figure3 campaign: traces
    whose true-key S-box output has ``HW <= t_low`` form group A,
    ``HW >= t_high`` group B (the balanced binomial tails).  Its
    sufficient statistics are four ``n_samples`` vectors — the extreme
    comms-avoiding case, shrinking chunk transport by orders of
    magnitude regardless of chunk size.
    """

    byte_index: int
    key_byte: int
    t_split: tuple[int, int] = HW_T_SPLIT
    threshold: float = TVLA_THRESHOLD
    state_block: int | None = None

    def create(self) -> OnlineTTestAccumulator:
        return OnlineTTestAccumulator(threshold=self.threshold)

    def _update(self, accumulator: OnlineTTestAccumulator, trace_set: TraceSet) -> None:
        from repro.sca.models import hw_sbox_model

        plaintexts = _chunk_plaintexts(trace_set, self.state_block)
        weights = hw_sbox_model(plaintexts, self.byte_index, self.key_byte)
        t_low, t_high = self.t_split
        mask_low = weights <= t_low
        mask_high = weights >= t_high
        if np.any(mask_low):
            accumulator.update_a(trace_set.traces[mask_low])
        if np.any(mask_high):
            accumulator.update_b(trace_set.traces[mask_high])

    def fold_chunk(self, task: ChunkTask, trace_set: TraceSet) -> dict:
        part = OnlineTTestAccumulator(threshold=self.threshold)
        self._update(part, trace_set)
        return part.state()

    def merge_state(self, accumulator, task, state):
        accumulator.merge(OnlineTTestAccumulator.from_state(state))
        return accumulator

    def freeze(self, accumulator):
        return accumulator.state()

    def thaw(self, frozen):
        return OnlineTTestAccumulator.from_state(frozen)


@dataclass
class ReducedCampaign:
    """What :meth:`StreamingCampaign.reduce` returns.

    ``value`` is the fold's merged accumulator (e.g. a
    :class:`~repro.campaigns.accumulators.CpaAccumulator`);
    ``trace_set`` is a zero-row *metadata* trace set over the campaign's
    compiled schedule, so drivers that need provenance (sample rate,
    issue cycles, the executed path) keep working without any trace
    bytes having crossed a process boundary.
    """

    value: Any
    trace_set: TraceSet
    n_traces: int
    n_chunks: int
    backend: dict = field(default_factory=dict)
