"""Checkpoint/resume for streamed campaigns and sweeps.

A streamed campaign is a fold over ordered chunks, and (by the chunk
determinism contract) every chunk is a pure function of the campaign
recipe and its trace range.  Persisting *the accumulator state plus the
set of completed chunks* is therefore a complete checkpoint: a killed
run restarted from it re-acquires only the missing chunks and finishes
byte-identical to an uninterrupted run.

Two layers:

* :class:`CheckpointStore` — one versioned record in one directory,
  written atomically (temp file + ``os.replace``) so a kill mid-write
  leaves the previous checkpoint intact, never a torn one.
* :class:`Checkpointer` — the driver-facing protocol the engine calls:
  ``begin()`` loads-or-initializes (validating the campaign fingerprint
  so a checkpoint is never resumed against different work),
  ``chunk_done()`` commits a chunk *after* the driver folded it, and
  ``finalize()`` marks the run complete.  The driver supplies
  ``state_fn``/``restore_fn`` to serialize whatever it folds chunks
  into (the accumulators are plain picklable objects by design).

The commit point matters: the engine calls ``chunk_done(i)`` only once
the consumer has asked for chunk ``i+1`` — i.e. after the fold of chunk
``i`` completed — so ``state_fn()`` always observes a state consistent
with the completed set.  A kill between fold and commit merely re-runs
one chunk against the *pre-fold* state; determinism makes the repeat
fold identical.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Any, Callable

from repro.backends.resilience import active_report

#: Bump on any incompatible record-shape change; loaders reject other
#: versions loudly instead of misreading them.
CHECKPOINT_SCHEMA = "repro.checkpoint/1"

CHECKPOINT_FILENAME = "checkpoint.pkl"


class CheckpointError(RuntimeError):
    """A checkpoint could not be loaded, validated, or applied."""


class CheckpointMismatch(CheckpointError):
    """The stored checkpoint belongs to a different campaign."""


def checkpoint_fingerprint(payload: Any) -> str:
    """A stable digest identifying the work a checkpoint belongs to."""
    return hashlib.sha256(pickle.dumps(payload)).hexdigest()


def digest_inputs(inputs: Any) -> str:
    """Content digest of a :class:`BatchInputs` batch.

    The shape signature is not enough — resuming against a same-shaped
    but different-valued batch would silently splice two campaigns — so
    the fingerprint covers the actual register and memory values.
    """
    digest = hashlib.sha256()
    digest.update(str(inputs.n_traces).encode())
    for reg in sorted(inputs.regs, key=repr):
        digest.update(repr(reg).encode())
        digest.update(inputs.regs[reg].tobytes())
    for address in sorted(inputs.mem_bytes):
        digest.update(str(address).encode())
        digest.update(inputs.mem_bytes[address].tobytes())
    return digest.hexdigest()


class CheckpointStore:
    """One atomic, versioned checkpoint record in a directory."""

    def __init__(self, directory: str):
        self.directory = str(directory)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, CHECKPOINT_FILENAME)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> dict | None:
        """The stored record, or ``None`` when there is none."""
        if not self.exists():
            return None
        try:
            with open(self.path, "rb") as handle:
                record = pickle.load(handle)
        except Exception as error:
            raise CheckpointError(
                f"checkpoint at {self.path} is unreadable: {error}"
            ) from error
        schema = record.get("schema") if isinstance(record, dict) else None
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint at {self.path} has schema {schema!r}; "
                f"this runtime reads {CHECKPOINT_SCHEMA!r}"
            )
        return record

    def save(self, record: dict) -> None:
        """Atomic write-rename: a kill mid-save never tears the record."""
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=CHECKPOINT_FILENAME, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(record, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def clear(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


class Checkpointer:
    """The engine-facing checkpoint protocol for one run.

    ``interval`` controls persistence frequency: state is written every
    ``interval`` committed chunks (and always at ``finalize``).  With
    ``resume=False`` any stored record is discarded and the run starts
    fresh; with ``resume=True`` a stored record must fingerprint-match
    the campaign (else :class:`CheckpointMismatch`) and its state is
    handed to ``restore_fn`` before streaming resumes.
    """

    def __init__(
        self,
        store: CheckpointStore | str,
        *,
        state_fn: Callable[[], Any] | None = None,
        restore_fn: Callable[[Any], None] | None = None,
        interval: int = 1,
        resume: bool = False,
    ):
        self.store = store if isinstance(store, CheckpointStore) else CheckpointStore(store)
        self.state_fn = state_fn
        self.restore_fn = restore_fn
        self.interval = max(1, int(interval))
        self.resume = bool(resume)
        self.completed: set[int] = set()
        self.complete = False
        self.resumed_from = 0
        self._fingerprint: str | None = None
        self._n_chunks = 0
        self._uncommitted = 0

    def _record_event(self, event: str, **info: Any) -> None:
        report = active_report()
        if report is not None:
            report.record_checkpoint(event, **info)

    def begin(self, fingerprint: str, n_chunks: int) -> set[int]:
        """Load-or-initialize; returns the chunk indices already done."""
        self._fingerprint = fingerprint
        self._n_chunks = int(n_chunks)
        record = self.store.load() if self.resume else None
        if not self.resume:
            self.store.clear()
        if record is None:
            self.completed = set()
            self.complete = False
            self._record_event("started", chunks=self._n_chunks)
            return set()
        if record["fingerprint"] != fingerprint:
            raise CheckpointMismatch(
                f"checkpoint at {self.store.path} was written by a different "
                "campaign (fingerprint mismatch); refusing to resume — pass "
                "resume=False (or a fresh --checkpoint directory) to start over"
            )
        self.completed = set(record["completed"])
        self.complete = bool(record.get("complete", False))
        self.resumed_from = len(self.completed)
        if self.restore_fn is not None and record.get("state") is not None:
            self.restore_fn(record["state"])
        self._record_event(
            "resumed", chunks_done=self.resumed_from, chunks=self._n_chunks
        )
        return set(self.completed)

    def _flush(self) -> None:
        self.store.save(
            {
                "schema": CHECKPOINT_SCHEMA,
                "fingerprint": self._fingerprint,
                "completed": sorted(self.completed),
                "complete": self.complete,
                "state": self.state_fn() if self.state_fn is not None else None,
            }
        )
        self._uncommitted = 0
        self._record_event("saved", chunks_done=len(self.completed))

    def chunk_done(self, index: int) -> None:
        """Commit chunk ``index`` (call only after its fold completed)."""
        if index in self.completed:
            return
        self.completed.add(index)
        self._uncommitted += 1
        if self._uncommitted >= self.interval:
            self._flush()

    def finalize(self) -> None:
        """Mark the run complete and persist the final state."""
        self.complete = True
        self._flush()
        self._record_event("completed", chunks_done=len(self.completed))
