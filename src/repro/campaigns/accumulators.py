"""Online sufficient-statistics accumulators for streaming campaigns.

The monolithic attack path materializes a full ``[n_traces, n_samples]``
trace matrix and runs two-pass statistics over it.  The accumulators in
this module fold fixed-size trace chunks into running sufficient
statistics instead, so a campaign of arbitrary size runs in memory
proportional to one chunk:

* :class:`OnlineMeanVar` — Welford/Chan mean and variance, vectorized
  over sample columns, with batched updates and pairwise ``merge`` (the
  parallel-combine form of Chan et al.);
* :class:`OnlineCorrAccumulator` — Pearson correlation of every model
  column against every trace sample, kept as centered co-moments so the
  result matches :func:`repro.sca.stats.pearson_corr` to ~1e-13;
* :class:`OnlineSnrAccumulator` — per-class mean/variance partitions
  reproducing :func:`repro.sca.snr.partition_snr`;
* :class:`OnlineTTestAccumulator` — two-group Welford reproducing
  :func:`repro.sca.ttest.welch_ttest`;
* :class:`CpaAccumulator` — folds chunks into a full
  :class:`repro.sca.cpa.CpaResult`, the engine behind
  :func:`repro.sca.cpa.cpa_attack_streaming`.

All accumulators use the *centered* (co-moment) update rather than raw
sum/sum-of-squares, which is what keeps the streamed results numerically
matched to the two-pass reference implementations: raw power sums lose
roughly ``log10(n * mean^2 / variance)`` digits to cancellation, the
Chan form does not.

Every finishing method (``correlations``, ``result``) is a *snapshot*:
it reads the sufficient statistics without consuming them, so a caller
can interleave updates and snapshots to obtain the statistic at every
prefix of a stream — that is the engine behind the prefix-incremental
curves (:func:`repro.sca.cpa.cpa_attack_curve` and friends) and the
chunk-aligned :class:`CpaBudgetSnapshots`.

Every accumulator additionally exposes a compact ``state()`` /
``from_state()`` serialization (plain dicts of numpy arrays and
scalars) so a worker process can ship *sufficient statistics* back to
the parent instead of raw traces — the comms-avoiding reduction of
``docs/backends.md``.  Merging a ``from_state`` round-trip of a
single-chunk accumulator is bit-identical to updating with that chunk
directly (the combine runs on exactly the chunk moments ``update``
would compute), which is what makes worker-side reduction byte-equal
to the serial fold.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.sca.snr import SnrResult
from repro.sca.ttest import TVLA_THRESHOLD, TTestResult


class OnlineMeanVar:
    """Running mean/variance over axis 0, one scalar pair per column.

    Accepts whole chunks (``update``) and sibling accumulators
    (``merge``), both via Chan's parallel combination of centered second
    moments.  Feeding one chunk of everything reproduces the two-pass
    ``mean``/``var`` results exactly.
    """

    def __init__(self) -> None:
        self.n = 0
        self.mean: np.ndarray | None = None
        self._m2: np.ndarray | None = None

    def update(self, chunk: np.ndarray) -> None:
        """Fold ``chunk`` (``[k, ...]``, any column shape) into the stats."""
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.shape[0] == 0:
            return
        k = chunk.shape[0]
        chunk_mean = chunk.mean(axis=0)
        chunk_m2 = ((chunk - chunk_mean) ** 2).sum(axis=0)
        self._combine(k, chunk_mean, chunk_m2)

    def merge(self, other: "OnlineMeanVar") -> None:
        """Fold another accumulator (e.g. from a worker process) in."""
        if other.n == 0 or other.mean is None or other._m2 is None:
            return
        self._combine(other.n, other.mean.copy(), other._m2.copy())

    def _combine(self, k: int, mean: np.ndarray, m2: np.ndarray) -> None:
        if self.n == 0:
            self.n = k
            self.mean = mean
            self._m2 = m2
            return
        assert self.mean is not None and self._m2 is not None
        n_total = self.n + k
        delta = mean - self.mean
        self._m2 += m2 + delta**2 * (self.n * k / n_total)
        self.mean += delta * (k / n_total)
        self.n = n_total

    def state(self) -> dict:
        """The sufficient statistics as a compact, picklable dict."""
        return {
            "n": int(self.n),
            "mean": None if self.mean is None else self.mean.copy(),
            "m2": None if self._m2 is None else self._m2.copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineMeanVar":
        acc = cls()
        acc.n = int(state["n"])
        acc.mean = None if state["mean"] is None else np.asarray(state["mean"], dtype=np.float64).copy()
        acc._m2 = None if state["m2"] is None else np.asarray(state["m2"], dtype=np.float64).copy()
        return acc

    def clone(self) -> "OnlineMeanVar":
        return self.from_state(self.state())

    def var(self, ddof: int = 0) -> np.ndarray:
        """Variance per column (population by default, like ``np.var``)."""
        if self.mean is None or self._m2 is None or self.n <= ddof:
            raise ValueError("not enough observations accumulated")
        return self._m2 / (self.n - ddof)

    @property
    def sum_sq_dev(self) -> np.ndarray:
        """The centered second moment ``sum((x - mean)^2)``."""
        if self._m2 is None:
            raise ValueError("no observations accumulated")
        return self._m2


class OnlineCorrAccumulator:
    """Streaming Pearson correlation of model columns vs trace samples.

    Maintains means, centered second moments and the centered
    co-moment matrix ``C = sum((x - mean_x)^T (y - mean_y))`` via Chan
    updates; :meth:`correlations` finishes with exactly the same
    division/clipping discipline as :func:`repro.sca.stats.pearson_corr`
    so a single-chunk stream is bit-identical and a multi-chunk stream
    matches to ~1e-13.
    """

    def __init__(self) -> None:
        self.n = 0
        self._single: bool | None = None
        self._mean_x: np.ndarray | None = None  # [n_models]
        self._mean_y: np.ndarray | None = None  # [n_samples]
        self._m2_x: np.ndarray | None = None
        self._m2_y: np.ndarray | None = None
        self._comoment: np.ndarray | None = None  # [n_models, n_samples]

    def update(self, models: np.ndarray, traces: np.ndarray) -> None:
        """Fold one chunk: ``models [k]``/``[k, m]``, ``traces [k, s]``."""
        models = np.asarray(models)
        if self._single is None:
            self._single = models.ndim == 1
        x = models.reshape(models.shape[0], -1).astype(np.float64)
        y = np.asarray(traces, dtype=np.float64)
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"trace count mismatch: {x.shape[0]} vs {y.shape[0]}")
        if x.shape[0] == 0:
            return
        k = x.shape[0]
        mean_x = x.mean(axis=0)
        mean_y = y.mean(axis=0)
        xc = x - mean_x
        yc = y - mean_y
        m2_x = (xc**2).sum(axis=0)
        m2_y = (yc**2).sum(axis=0)
        comoment = xc.T @ yc
        if self.n == 0:
            self.n = k
            self._mean_x, self._mean_y = mean_x, mean_y
            self._m2_x, self._m2_y = m2_x, m2_y
            self._comoment = comoment
            return
        assert self._mean_x is not None and self._mean_y is not None
        assert self._m2_x is not None and self._m2_y is not None
        assert self._comoment is not None
        if mean_x.shape != self._mean_x.shape or mean_y.shape != self._mean_y.shape:
            raise ValueError("chunk model/sample width changed between updates")
        n_total = self.n + k
        weight = self.n * k / n_total
        delta_x = mean_x - self._mean_x
        delta_y = mean_y - self._mean_y
        self._comoment += comoment + np.outer(delta_x, delta_y) * weight
        self._m2_x += m2_x + delta_x**2 * weight
        self._m2_y += m2_y + delta_y**2 * weight
        self._mean_x += delta_x * (k / n_total)
        self._mean_y += delta_y * (k / n_total)
        self.n = n_total

    def merge(self, other: "OnlineCorrAccumulator") -> None:
        """Fold a sibling accumulator (parallel worker) into this one."""
        if other.n == 0:
            return
        if self.n == 0:
            self.n = other.n
            self._single = other._single
            self._mean_x = other._mean_x.copy()  # type: ignore[union-attr]
            self._mean_y = other._mean_y.copy()  # type: ignore[union-attr]
            self._m2_x = other._m2_x.copy()  # type: ignore[union-attr]
            self._m2_y = other._m2_y.copy()  # type: ignore[union-attr]
            self._comoment = other._comoment.copy()  # type: ignore[union-attr]
            return
        assert other._mean_x is not None and other._mean_y is not None
        assert other._m2_x is not None and other._m2_y is not None
        assert other._comoment is not None
        n_total = self.n + other.n
        weight = self.n * other.n / n_total
        delta_x = other._mean_x - self._mean_x
        delta_y = other._mean_y - self._mean_y
        self._comoment += other._comoment + np.outer(delta_x, delta_y) * weight
        self._m2_x += other._m2_x + delta_x**2 * weight
        self._m2_y += other._m2_y + delta_y**2 * weight
        self._mean_x += delta_x * (other.n / n_total)
        self._mean_y += delta_y * (other.n / n_total)
        self.n = n_total

    _STATE_ARRAYS = ("mean_x", "mean_y", "m2_x", "m2_y", "comoment")

    def state(self) -> dict:
        """The sufficient statistics as a compact, picklable dict."""
        record: dict = {"n": int(self.n), "single": self._single}
        for key in self._STATE_ARRAYS:
            value = getattr(self, f"_{key}")
            record[key] = None if value is None else value.copy()
        return record

    @classmethod
    def from_state(cls, state: dict) -> "OnlineCorrAccumulator":
        acc = cls()
        acc.n = int(state["n"])
        acc._single = state["single"]
        for key in cls._STATE_ARRAYS:
            value = state[key]
            setattr(
                acc,
                f"_{key}",
                None if value is None else np.asarray(value, dtype=np.float64).copy(),
            )
        return acc

    def clone(self) -> "OnlineCorrAccumulator":
        return self.from_state(self.state())

    def correlations(self) -> np.ndarray:
        """``[n_models, n_samples]`` (or ``[n_samples]`` for 1-D models)."""
        if self.n == 0 or self._comoment is None:
            raise ValueError("no chunks accumulated")
        assert self._m2_x is not None and self._m2_y is not None
        denominator = np.outer(np.sqrt(self._m2_x), np.sqrt(self._m2_y))
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = self._comoment / denominator
        corr = np.nan_to_num(corr, nan=0.0, posinf=0.0, neginf=0.0)
        corr = np.clip(corr, -1.0, 1.0)
        return corr[0] if self._single else corr

    #: ``correlations`` reads the moments without consuming them; the
    #: alias documents that prefix-snapshot callers rely on it.
    snapshot = correlations


class OnlineSnrAccumulator:
    """Streaming SNR/NICV partitioned by an integer intermediate.

    Chunks arrive as ``(traces, labels)`` pairs; the accumulator keeps
    one :class:`OnlineMeanVar` per observed class plus a global one, and
    :meth:`result` reproduces :func:`repro.sca.snr.partition_snr`.
    """

    def __init__(self) -> None:
        self._classes: dict[int, OnlineMeanVar] = {}
        self._total = OnlineMeanVar()

    def update(self, traces: np.ndarray, labels: np.ndarray) -> None:
        traces = np.asarray(traces, dtype=np.float64)
        labels = np.asarray(labels)
        if labels.shape[0] != traces.shape[0]:
            raise ValueError("labels must have one entry per trace")
        self._total.update(traces)
        for value in np.unique(labels):
            rows = traces[labels == value]
            self._classes.setdefault(int(value), OnlineMeanVar()).update(rows)

    def merge(self, other: "OnlineSnrAccumulator") -> None:
        self._total.merge(other._total)
        for value, acc in other._classes.items():
            self._classes.setdefault(value, OnlineMeanVar()).merge(acc)

    def state(self) -> dict:
        """The sufficient statistics as a compact, picklable dict."""
        return {
            "classes": {value: acc.state() for value, acc in self._classes.items()},
            "total": self._total.state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineSnrAccumulator":
        acc = cls()
        acc._classes = {
            int(value): OnlineMeanVar.from_state(sub)
            for value, sub in state["classes"].items()
        }
        acc._total = OnlineMeanVar.from_state(state["total"])
        return acc

    def clone(self) -> "OnlineSnrAccumulator":
        return self.from_state(self.state())

    def result(self, min_class_size: int = 2) -> SnrResult:
        """Finish into an :class:`SnrResult` (same math as partition_snr)."""
        usable = [
            acc
            for _value, acc in sorted(self._classes.items())
            if acc.n >= min_class_size
        ]
        if len(usable) < 2:
            raise ValueError("need at least two usable classes for SNR")
        means = np.stack([acc.mean for acc in usable])
        variances = np.stack([acc.var() for acc in usable])
        weights = np.asarray([acc.n for acc in usable], dtype=np.float64)
        weights /= weights.sum()
        grand_mean = (weights[:, None] * means).sum(axis=0)
        signal = (weights[:, None] * (means - grand_mean) ** 2).sum(axis=0)
        noise = (weights[:, None] * variances).sum(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            snr = signal / noise
        snr = np.nan_to_num(snr, nan=0.0, posinf=0.0)
        total_var = self._total.var()
        with np.errstate(divide="ignore", invalid="ignore"):
            nicv = signal / total_var
        nicv = np.clip(np.nan_to_num(nicv, nan=0.0, posinf=0.0), 0.0, 1.0)
        return SnrResult(snr=snr, nicv=nicv, n_classes=len(usable))

    snapshot = result


class OnlineTTestAccumulator:
    """Streaming Welch t-test between two trace populations (TVLA)."""

    def __init__(self, threshold: float = TVLA_THRESHOLD) -> None:
        self.threshold = threshold
        self.group_a = OnlineMeanVar()
        self.group_b = OnlineMeanVar()

    def update_a(self, traces: np.ndarray) -> None:
        self.group_a.update(traces)

    def update_b(self, traces: np.ndarray) -> None:
        self.group_b.update(traces)

    def merge(self, other: "OnlineTTestAccumulator") -> None:
        self.group_a.merge(other.group_a)
        self.group_b.merge(other.group_b)

    def state(self) -> dict:
        """The sufficient statistics as a compact, picklable dict."""
        return {
            "threshold": float(self.threshold),
            "a": self.group_a.state(),
            "b": self.group_b.state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineTTestAccumulator":
        acc = cls(threshold=float(state["threshold"]))
        acc.group_a = OnlineMeanVar.from_state(state["a"])
        acc.group_b = OnlineMeanVar.from_state(state["b"])
        return acc

    def clone(self) -> "OnlineTTestAccumulator":
        return self.from_state(self.state())

    def result(self) -> TTestResult:
        """Finish into a :class:`TTestResult` (same math as welch_ttest)."""
        n_a, n_b = self.group_a.n, self.group_b.n
        if n_a < 2 or n_b < 2:
            raise ValueError("each group needs at least two traces")
        mean_a = self.group_a.mean
        mean_b = self.group_b.mean
        var_a = self.group_a.var(ddof=1)
        var_b = self.group_b.var(ddof=1)
        denom = np.sqrt(var_a / n_a + var_b / n_b)
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (mean_a - mean_b) / denom
        t = np.nan_to_num(t, nan=0.0, posinf=0.0, neginf=0.0)
        return TTestResult(t_values=t, threshold=self.threshold)

    snapshot = result


class CpaAccumulator:
    """Folds trace chunks into a full :class:`repro.sca.cpa.CpaResult`.

    Each chunk arrives with its own model evaluator (closing over that
    chunk's plaintexts), mirroring the monolithic
    :func:`repro.sca.cpa.cpa_attack` signature per chunk.
    """

    def __init__(self, guesses: Sequence[int] = tuple(range(256))) -> None:
        self.guesses = np.asarray(list(guesses))
        self._corr = OnlineCorrAccumulator()

    @property
    def n_traces(self) -> int:
        return self._corr.n

    def update(self, traces: np.ndarray, model_fn: Callable[[int], np.ndarray]) -> None:
        """Fold one chunk; ``model_fn(guess)`` returns ``[chunk_traces]``."""
        models = np.stack(
            [np.asarray(model_fn(int(g)), dtype=np.float64) for g in self.guesses],
            axis=1,
        )
        self._corr.update(models, traces)

    def merge(self, other: "CpaAccumulator") -> None:
        if not np.array_equal(self.guesses, other.guesses):
            raise ValueError("cannot merge CPA accumulators over different guesses")
        self._corr.merge(other._corr)

    def state(self) -> dict:
        """The sufficient statistics as a compact, picklable dict."""
        return {"guesses": self.guesses.copy(), "corr": self._corr.state()}

    @classmethod
    def from_state(cls, state: dict) -> "CpaAccumulator":
        acc = cls(guesses=np.asarray(state["guesses"]))
        acc._corr = OnlineCorrAccumulator.from_state(state["corr"])
        return acc

    def clone(self) -> "CpaAccumulator":
        return self.from_state(self.state())

    def result(self):
        """Snapshot the folded state as a :class:`repro.sca.cpa.CpaResult`.

        Non-destructive: further ``update`` calls continue from the same
        sufficient statistics, so interleaving updates and ``result``
        snapshots yields the attack outcome at every stream prefix.
        """
        from repro.sca.cpa import CpaResult

        correlations = np.atleast_2d(self._corr.correlations())
        return CpaResult(
            correlations=correlations, guesses=self.guesses, n_traces=self._corr.n
        )

    snapshot = result


class BudgetSplitter:
    """Walks a chunk stream, splitting chunks at trace-budget boundaries.

    Feed it each chunk's length; it yields ``(low, high, budget)``
    sub-ranges covering the chunk in order, where ``budget`` names the
    trace budget the sub-range *completes* (snapshot after folding it)
    or ``None`` for the remainder past the last boundary in the chunk.
    """

    def __init__(self, budgets: Sequence[int], start: int = 0):
        budget_array = np.asarray(list(budgets), dtype=np.int64)
        if budget_array.size == 0 or np.any(budget_array <= 0):
            raise ValueError("budgets must be positive")
        if np.any(np.diff(budget_array) <= 0):
            raise ValueError("budgets must be strictly increasing")
        self.budgets = budget_array
        self._base = int(start)
        self._reached = int(np.searchsorted(self.budgets, self._base, side="right"))

    def split(self, chunk_len: int):
        low = 0
        while self._reached < self.budgets.size:
            boundary = int(self.budgets[self._reached]) - self._base
            if boundary > chunk_len:
                break
            yield low, boundary, int(self.budgets[self._reached])
            low = boundary
            self._reached += 1
        if low < chunk_len:
            yield low, chunk_len, None
        self._base += chunk_len


class CpaBudgetSnapshots:
    """A streaming CPA that snapshots a full result at each trace budget.

    Chunks arrive exactly as for :class:`CpaAccumulator`; whenever the
    accumulated trace count crosses a requested budget the update is
    split at the boundary and the attack state is snapshotted, so one
    pass over a (chunked, possibly budget-misaligned) campaign yields
    ``cpa_attack``-equivalent results at every budget — plus, via
    :meth:`result`, the full-campaign result of everything folded.

    In *deferred* mode (``defer=True``) the snapshots are not taken:
    each budget-split sub-range is folded into its own fresh
    :class:`CpaAccumulator` and appended to an ordered parts list.  A
    worker process can therefore fold its chunk at ``start=<chunk lo>``
    and ship only the parts; the parent merges them in stream order into
    a non-deferred instance, which replays exactly the combine sequence
    the serial fold would have run — bit for bit, because each part
    carries precisely the sub-range moments ``update`` computes.
    """

    def __init__(
        self,
        budgets: Sequence[int],
        guesses: Sequence[int] = tuple(range(256)),
        *,
        start: int = 0,
        defer: bool = False,
    ):
        self._splitter = BudgetSplitter(budgets, start=start)
        self.budgets = self._splitter.budgets
        self.guesses = np.asarray(list(guesses))
        self.start = int(start)
        self._defer = bool(defer)
        self._accumulator = CpaAccumulator(self.guesses)
        self._parts: list[tuple[int | None, CpaAccumulator]] = []
        self.results: list = []

    @property
    def n_traces(self) -> int:
        if self._defer:
            return sum(part.n_traces for _budget, part in self._parts)
        return self._accumulator.n_traces

    @property
    def end(self) -> int:
        """One past the last stream position folded (``start`` + length)."""
        return self._splitter._base

    def update(self, traces: np.ndarray, model_fn: Callable[[int], np.ndarray]) -> None:
        """Fold one chunk, snapshotting at every budget it crosses."""
        models = np.stack(
            [np.asarray(model_fn(int(g)), dtype=np.float64) for g in self.guesses],
            axis=1,
        )
        for low, high, budget in self._splitter.split(traces.shape[0]):
            if self._defer:
                part = CpaAccumulator(self.guesses)
                part._corr.update(models[low:high], traces[low:high])
                self._parts.append((budget, part))
            else:
                self._accumulator._corr.update(models[low:high], traces[low:high])
                if budget is not None:
                    self.results.append(self._accumulator.result())

    def merge(self, other: "CpaBudgetSnapshots") -> None:
        """Fold a *deferred* sibling in, in stream order.

        ``other`` must start exactly where this instance ends so the
        budget boundaries stay chunk-aligned; the parts replay the same
        per-sub-range combines the serial fold runs, keeping the merged
        snapshots byte-identical to serial streaming.
        """
        if not other._defer:
            raise ValueError("can only merge deferred (worker-side) snapshot parts")
        if not np.array_equal(self.budgets, other.budgets):
            raise ValueError("cannot merge snapshots over different budgets")
        if not np.array_equal(self.guesses, other.guesses):
            raise ValueError("cannot merge snapshots over different guesses")
        if other.start != self.end:
            raise ValueError(
                f"non-contiguous merge: have traces up to {self.end}, "
                f"parts start at {other.start}"
            )
        if self._defer:
            self._parts.extend(other._parts)
        else:
            for budget, part in other._parts:
                self._accumulator.merge(part)
                if budget is not None:
                    self.results.append(self._accumulator.result())
        self._splitter._base = other._splitter._base
        self._splitter._reached = other._splitter._reached

    def state(self) -> dict:
        """The sufficient statistics as a compact, picklable dict."""
        record: dict = {
            "budgets": self.budgets.copy(),
            "guesses": self.guesses.copy(),
            "start": self.start,
            "end": self.end,
            "defer": self._defer,
        }
        if self._defer:
            record["parts"] = [
                (budget, part.state()) for budget, part in self._parts
            ]
        else:
            record["accumulator"] = self._accumulator.state()
            record["results"] = [
                (snap.correlations.copy(), snap.n_traces) for snap in self.results
            ]
        return record

    @classmethod
    def from_state(cls, state: dict) -> "CpaBudgetSnapshots":
        from repro.sca.cpa import CpaResult

        acc = cls(
            state["budgets"],
            state["guesses"],
            start=int(state["start"]),
            defer=bool(state["defer"]),
        )
        acc._splitter._base = int(state["end"])
        acc._splitter._reached = int(
            np.searchsorted(acc.budgets, acc._splitter._base, side="right")
        )
        if acc._defer:
            acc._parts = [
                (None if budget is None else int(budget), CpaAccumulator.from_state(sub))
                for budget, sub in state["parts"]
            ]
        else:
            acc._accumulator = CpaAccumulator.from_state(state["accumulator"])
            acc.results = [
                CpaResult(
                    correlations=np.asarray(correlations).copy(),
                    guesses=acc.guesses,
                    n_traces=int(n_traces),
                )
                for correlations, n_traces in state["results"]
            ]
        return acc

    def clone(self) -> "CpaBudgetSnapshots":
        return self.from_state(self.state())

    def result(self):
        """The full-campaign :class:`CpaResult` over everything folded
        (the stream keeps accumulating past the last budget)."""
        if self._defer:
            raise ValueError("deferred snapshot parts have no finished result")
        return self._accumulator.result()


def fold_correlation(
    chunks: Iterable[tuple[np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Convenience: stream ``(models, traces)`` chunks to correlations."""
    accumulator = OnlineCorrAccumulator()
    for models, traces in chunks:
        accumulator.update(models, traces)
    return accumulator.correlations()
