"""The streaming campaign engine: chunked, cached, optionally parallel.

:class:`StreamingCampaign` is the one acquisition path every experiment
driver runs through.  It compiles a program's pipeline/leakage schedule
once (consulting a process-wide cache shared across campaigns on the
same program), then yields traces in fixed-size chunks: each chunk is a
full :class:`~repro.power.acquisition.TraceSet` over a slice of the
inputs, produced by the vectorized executor and the oscilloscope chain
with a chunk-indexed noise seed.

Properties the rest of the stack builds on:

* **constant memory** — the trace matrix, the vectorized executor's
  page store and the value table all scale with the chunk, never with
  the campaign, so campaign size is unbounded;
* **reproducibility** — chunk ``i`` uses
  ``derive_seed(campaign_seed, i)``, so a campaign is a pure function of
  ``(seed, chunk_size)`` regardless of worker count or acquisition
  history; chunk 0 of a single-chunk stream is byte-identical to the
  historical monolithic acquisition;
* **parallelism** — chunks are independent *declarative tasks*
  (:class:`~repro.backends.base.ChunkTask`: chunk bounds, a counter
  range via ``trace_offset``, the chunk's scope seed) dispatched through
  a pluggable :class:`~repro.backends.ExecutionBackend`; results stream
  back in chunk order, and every backend is byte-identical to the
  serial reference for float32 campaigns (see ``docs/backends.md``).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.backends import (
    BackendContext,
    ChunkTask,
    ExecutionBackend,
    resolve_backend,
)
from repro.isa.program import Program
from repro.power.acquisition import (
    BatchInputs,
    CompiledAcquisition,
    TraceCampaign,
    TraceSet,
    derive_seed,
)
from repro.power.profile import LeakageProfile
from repro.power.scope import Oscilloscope, ScopeConfig
from repro.uarch.config import PipelineConfig

#: Backwards-compatible alias: the compiled triple grew a ``tape`` field
#: but still unpacks as ``(path, schedule, leakage)``.
CompiledSchedule = CompiledAcquisition

#: Process-wide compiled-schedule cache: id(program) -> {key -> compiled}.
#: ``Program`` is an eq-comparing dataclass (unhashable), so entries are
#: keyed by identity and evicted by a weakref finalizer when the program
#: is garbage-collected.
_SCHEDULE_CACHE: dict[int, dict] = {}


def _program_cache(program: Program) -> dict:
    key = id(program)
    per_program = _SCHEDULE_CACHE.get(key)
    if per_program is None:
        per_program = {}
        _SCHEDULE_CACHE[key] = per_program
        weakref.finalize(program, _SCHEDULE_CACHE.pop, key, None)
    return per_program


def schedule_cache_info() -> tuple[int, int]:
    """(programs cached, total compiled schedules) — for tests/benchmarks."""
    entries = sum(len(per_program) for per_program in _SCHEDULE_CACHE.values())
    return len(_SCHEDULE_CACHE), entries


def clear_schedule_cache() -> None:
    _SCHEDULE_CACHE.clear()


@dataclass
class TraceChunk:
    """One streamed slice of a campaign: a TraceSet plus its offset."""

    start: int
    index: int
    trace_set: TraceSet

    @property
    def traces(self) -> np.ndarray:
        return self.trace_set.traces

    @property
    def inputs(self) -> BatchInputs:
        return self.trace_set.inputs

    @property
    def n_traces(self) -> int:
        return self.trace_set.n_traces

    @property
    def stop(self) -> int:
        return self.start + self.n_traces


class StreamingCampaign:
    """Chunked acquisition harness for one program on one pipeline.

    A drop-in superset of :class:`~repro.power.acquisition.TraceCampaign`:
    :meth:`acquire` materializes a whole campaign exactly as the
    monolithic path does, :meth:`stream` yields it chunk by chunk in
    bounded memory, optionally fanning chunks out over worker processes.
    """

    def __init__(
        self,
        program: Program,
        config: PipelineConfig | None = None,
        profile: LeakageProfile | None = None,
        scope: ScopeConfig | None = None,
        entry: str | None = None,
        window_cycles: tuple[int, int] | None = None,
        seed: int = 0xC0FFEE,
        keep_power: bool = False,
        chunk_size: int | None = None,
        jobs: int = 1,
        backend: str | ExecutionBackend | None = None,
    ):
        self.program = program
        self.seed = seed
        self.chunk_size = chunk_size
        self.jobs = max(1, jobs)
        #: backend policy ("auto"/"serial"/"fork"/"spawn"/... or a live
        #: :class:`ExecutionBackend`); ``None`` means "auto"
        self.backend = backend
        self._campaign = TraceCampaign(
            program,
            config=config,
            profile=profile,
            scope=scope,
            entry=entry,
            window_cycles=window_cycles,
            seed=seed,
            keep_power=keep_power,
        )

    # -- compiled-schedule cache ---------------------------------------

    @property
    def config(self) -> PipelineConfig:
        return self._campaign.config

    @property
    def scope_config(self) -> ScopeConfig:
        return self._campaign.scope_config

    def _cache_key(self, inputs: BatchInputs) -> tuple:
        campaign = self._campaign
        # config.identity() excludes the display name, so renamed
        # variants (sweep points, with_overrides copies) — and configs
        # differing only in scope knobs the compilation never sees —
        # share one compiled schedule.
        return (
            campaign.config.identity(),
            campaign.scope_config.samples_per_cycle,
            campaign.entry,
            campaign.window_cycles,
            inputs.signature(),
        )

    def compiled(self, inputs: BatchInputs) -> CompiledSchedule:
        """The (path, schedule, leakage) triple, compiled at most once.

        Consults the process-wide cache keyed by (program, config,
        scope, entry, window, input shape) so distinct campaigns over
        the same workload share one compilation.
        """
        if not self._campaign._schedule_input_independent():
            # Conditionally-executed non-branch instructions make the
            # schedule depend on input values, not just shape: compile
            # against exactly this batch and skip the shared cache.
            return self._campaign.compile_with(inputs)
        key = self._cache_key(inputs)
        per_program = _program_cache(self.program)
        compiled = per_program.get(key)
        if compiled is None:
            compiled = self._campaign.compile_with(inputs)
            per_program[key] = compiled
        else:
            # Seed the inner campaign's own cache so acquire() skips the
            # reference-executor pass entirely.
            self._campaign._compiled = compiled
            self._campaign._compiled_signature = inputs.signature()
        return compiled

    # -- acquisition ----------------------------------------------------

    def acquire(
        self,
        inputs: BatchInputs,
        power_transform: Callable[[np.ndarray], np.ndarray] | None = None,
        scope_seed: int | None = None,
    ) -> TraceSet:
        """One-shot (monolithic) acquisition, schedule cache included."""
        self.compiled(inputs)
        return self._campaign.acquire(
            inputs, power_transform=power_transform, scope_seed=scope_seed
        )

    def chunk_bounds(self, n_traces: int, chunk_size: int | None = None) -> list[tuple[int, int]]:
        """The ``[start, stop)`` trace ranges a stream will cover."""
        size = chunk_size if chunk_size is not None else self.chunk_size
        if size is None or size >= n_traces:
            return [(0, n_traces)]
        if size <= 0:
            raise ValueError(f"chunk size must be positive, got {size}")
        return [(lo, min(lo + size, n_traces)) for lo in range(0, n_traces, size)]

    def stream(
        self,
        inputs: BatchInputs,
        chunk_size: int | None = None,
        jobs: int | None = None,
        power_transform: Callable[[np.ndarray], np.ndarray] | None = None,
        power_transform_factory: Callable[[int], Callable[[np.ndarray], np.ndarray]]
        | None = None,
        backend: str | ExecutionBackend | None = None,
    ) -> Iterator[TraceChunk]:
        """Yield the campaign as ordered, seed-stable trace chunks.

        ``power_transform`` applies one callable to every chunk's power
        matrix; ``power_transform_factory`` instead receives the chunk
        index and returns that chunk's transform — the hook that lets
        seeded environment models decorrelate their noise per chunk
        (:meth:`repro.os_sim.environment.Environment.reseeded`).

        ``backend`` picks where chunk tasks execute (a policy name or a
        live :class:`~repro.backends.ExecutionBackend`); the default
        ``"auto"`` parallelizes when ``jobs > 1``, degrading with a
        :class:`~repro.backends.BackendDegradationWarning` — never
        silently — when no parallel backend is usable.
        """
        if power_transform is not None and power_transform_factory is not None:
            raise ValueError("pass power_transform or power_transform_factory, not both")
        inputs.validate()
        bounds = self.chunk_bounds(inputs.n_traces, chunk_size)
        jobs = self.jobs if jobs is None else max(1, jobs)
        # Compile before any fork so workers inherit the schedule, and
        # resolve the campaign's quantizer full-scale so every chunk —
        # in every worker — shares one LSB.  Calibration sees chunk 0's
        # power transform (factories must be pure functions of the
        # chunk index — parallel backends may evaluate factory(0) twice).
        compiled = self.compiled(inputs)
        transform0 = (
            power_transform_factory(0)
            if power_transform_factory is not None
            else power_transform
        )
        self._calibrate_full_scale(inputs, bounds, transform0)
        float32 = self._campaign.precision == "float32"
        tasks = [
            ChunkTask(
                index=index,
                lo=lo,
                hi=hi,
                scope_seed=self._chunk_scope_seed(index),
                trace_offset=lo if float32 else 0,
            )
            for index, (lo, hi) in enumerate(bounds)
        ]
        context = BackendContext(
            campaign=self._campaign,
            inputs=inputs,
            power_transform=power_transform,
            power_transform_factory=power_transform_factory,
            transform0=transform0,
            compiled=compiled,
        )
        policy = backend if backend is not None else self.backend
        resolved, owned = resolve_backend(
            policy, jobs=jobs, n_tasks=len(tasks), context=context
        )
        try:
            resolved.start()
            path, schedule, leakage = compiled
            for index, lo, payload in resolved.map_chunks(context, tasks):
                if isinstance(payload, TraceSet):
                    # Rare: the chunk recompiled against a different path
                    # (data-dependent branch direction), or the backend
                    # ships whole trace sets; take it as-is.
                    trace_set = payload
                else:
                    # Common case: the worker's schedule matches the
                    # parent's compiled triple, so only the per-chunk
                    # data crossed the pipe; rewrap with shared objects.
                    traces, table, power = payload
                    trace_set = TraceSet(
                        traces=traces,
                        inputs=inputs.slice(lo, lo + traces.shape[0]),
                        schedule=schedule,
                        leakage=leakage,
                        table=table,
                        path=path,
                        power=power,
                    )
                yield TraceChunk(start=lo, index=index, trace_set=trace_set)
        finally:
            if owned:
                resolved.close()

    def _chunk_scope_seed(self, index: int) -> int:
        """The oscilloscope seed of chunk ``index``.

        float64-exact mode keeps the historical per-chunk derived
        streams (chunk 0 byte-identical to a monolithic run); float32
        mode shares one counter-based stream across all chunks — the
        chunk's ``trace_offset`` separates the draws, which is what
        makes a campaign's noise independent of its chunking.
        """
        if self._campaign.precision == "float32":
            return derive_seed(self.seed, 0)
        return derive_seed(self.seed, index)

    def _calibrate_full_scale(
        self,
        inputs: BatchInputs,
        bounds: list[tuple[int, int]],
        power_transform: Callable[[np.ndarray], np.ndarray] | None,
    ) -> None:
        """Pin the campaign's auto-ranged quantizer full-scale.

        With ``adc_range=None`` the historical chunked path quantized
        every chunk against its own observed spread, i.e. a different
        LSB per chunk.  Before streaming (and before any fork), this
        resolves one deterministic full-scale from the campaign's
        leading-trace power — the same rule a monolithic float32
        capture applies internally — and pins it on the inner campaign.

        Monolithic float64-exact runs (a single chunk) are left alone:
        their per-capture auto-range is part of the bit-exact contract.
        """
        campaign = self._campaign
        config = campaign.scope_config
        if config.quantize_bits is None or config.adc_range is not None:
            return
        if campaign.pinned_full_scale is not None:
            return
        if campaign.precision != "float32" and len(bounds) <= 1:
            return
        compiled = self.compiled(inputs)
        k = min(config.calibration_traces, inputs.n_traces)
        result, compiled = campaign._run_checked(
            inputs.slice(0, k), compiled, reused=True
        )
        # Evaluate the prefix in the campaign's own dtype so the pinned
        # value is bit-identical to what a monolithic float32 capture
        # would self-calibrate from.
        power = compiled.leakage.evaluate(
            result.table,
            campaign.profile,
            dtype=np.float32 if campaign.precision == "float32" else np.float64,
        )
        if power_transform is not None:
            power = power_transform(power)
        scope = Oscilloscope(config, seed=self._chunk_scope_seed(0))
        campaign.pinned_full_scale = scope.calibrate_full_scale(power)

