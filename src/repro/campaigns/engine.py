"""The streaming campaign engine: chunked, cached, optionally parallel.

:class:`StreamingCampaign` is the one acquisition path every experiment
driver runs through.  It compiles a program's pipeline/leakage schedule
once (consulting a process-wide cache shared across campaigns on the
same program), then yields traces in fixed-size chunks: each chunk is a
full :class:`~repro.power.acquisition.TraceSet` over a slice of the
inputs, produced by the vectorized executor and the oscilloscope chain
with a chunk-indexed noise seed.

Properties the rest of the stack builds on:

* **constant memory** — the trace matrix, the vectorized executor's
  page store and the value table all scale with the chunk, never with
  the campaign, so campaign size is unbounded;
* **reproducibility** — chunk ``i`` uses
  ``derive_seed(campaign_seed, i)``, so a campaign is a pure function of
  ``(seed, chunk_size)`` regardless of worker count or acquisition
  history; chunk 0 of a single-chunk stream is byte-identical to the
  historical monolithic acquisition;
* **parallelism** — chunks are independent *declarative tasks*
  (:class:`~repro.backends.base.ChunkTask`: chunk bounds, a counter
  range via ``trace_offset``, the chunk's scope seed) dispatched through
  a pluggable :class:`~repro.backends.ExecutionBackend`; results stream
  back in chunk order, and every backend is byte-identical to the
  serial reference for float32 campaigns (see ``docs/backends.md``).
"""

from __future__ import annotations

import hashlib
import pickle
import warnings
import weakref
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.backends import (
    BackendBroken,
    BackendContext,
    BackendDegradationWarning,
    ChunkCorruption,
    ChunkTask,
    ExecutionBackend,
    ResilienceContext,
    RetryPolicy,
    make_backend,
    quarantine_backend,
    resolve_backend,
)
from repro.backends.resilience import active_report, next_rung
from repro.campaigns.checkpoint import Checkpointer, checkpoint_fingerprint, digest_inputs
from repro.isa.program import Program
from repro.power.acquisition import (
    BatchInputs,
    CompiledAcquisition,
    TraceCampaign,
    TraceSet,
    derive_seed,
)
from repro.power.profile import LeakageProfile
from repro.power.scope import Oscilloscope, ScopeConfig
from repro.uarch.config import PipelineConfig

#: Backwards-compatible alias: the compiled triple grew a ``tape`` field
#: but still unpacks as ``(path, schedule, leakage)``.
CompiledSchedule = CompiledAcquisition

#: Process-wide compiled-schedule cache: id(program) -> {key -> compiled}.
#: ``Program`` is an eq-comparing dataclass (unhashable), so entries are
#: keyed by identity and evicted by a weakref finalizer when the program
#: is garbage-collected.
_SCHEDULE_CACHE: dict[int, dict] = {}


def _fold_digest(fold) -> str:
    """A stable digest of a fold's recipe, for checkpoint fingerprints."""
    return hashlib.sha256(pickle.dumps(fold)).hexdigest()


def _program_cache(program: Program) -> dict:
    key = id(program)
    per_program = _SCHEDULE_CACHE.get(key)
    if per_program is None:
        per_program = {}
        _SCHEDULE_CACHE[key] = per_program
        weakref.finalize(program, _SCHEDULE_CACHE.pop, key, None)
    return per_program


def schedule_cache_info() -> tuple[int, int]:
    """(programs cached, total compiled schedules) — for tests/benchmarks."""
    entries = sum(len(per_program) for per_program in _SCHEDULE_CACHE.values())
    return len(_SCHEDULE_CACHE), entries


def clear_schedule_cache() -> None:
    _SCHEDULE_CACHE.clear()


@dataclass
class TraceChunk:
    """One streamed slice of a campaign: a TraceSet plus its offset.

    ``replayed`` marks a chunk re-yielded from an already-complete
    checkpointed run: its statistics are part of the restored state, so
    drivers must *not* fold it again — it exists only so they still see
    a final chunk's trace-set metadata (schedule, table, path).
    """

    start: int
    index: int
    trace_set: TraceSet
    replayed: bool = field(default=False, compare=False)

    @property
    def traces(self) -> np.ndarray:
        return self.trace_set.traces

    @property
    def inputs(self) -> BatchInputs:
        return self.trace_set.inputs

    @property
    def n_traces(self) -> int:
        return self.trace_set.n_traces

    @property
    def stop(self) -> int:
        return self.start + self.n_traces


class StreamingCampaign:
    """Chunked acquisition harness for one program on one pipeline.

    A drop-in superset of :class:`~repro.power.acquisition.TraceCampaign`:
    :meth:`acquire` materializes a whole campaign exactly as the
    monolithic path does, :meth:`stream` yields it chunk by chunk in
    bounded memory, optionally fanning chunks out over worker processes.
    """

    def __init__(
        self,
        program: Program,
        config: PipelineConfig | None = None,
        profile: LeakageProfile | None = None,
        scope: ScopeConfig | None = None,
        entry: str | None = None,
        window_cycles: tuple[int, int] | None = None,
        seed: int = 0xC0FFEE,
        keep_power: bool = False,
        chunk_size: int | None = None,
        jobs: int = 1,
        backend: str | ExecutionBackend | None = None,
    ):
        self.program = program
        self.seed = seed
        self.chunk_size = chunk_size
        self.jobs = max(1, jobs)
        #: backend policy ("auto"/"serial"/"fork"/"spawn"/... or a live
        #: :class:`ExecutionBackend`); ``None`` means "auto"
        self.backend = backend
        self._campaign = TraceCampaign(
            program,
            config=config,
            profile=profile,
            scope=scope,
            entry=entry,
            window_cycles=window_cycles,
            seed=seed,
            keep_power=keep_power,
        )

    # -- compiled-schedule cache ---------------------------------------

    @property
    def config(self) -> PipelineConfig:
        return self._campaign.config

    @property
    def scope_config(self) -> ScopeConfig:
        return self._campaign.scope_config

    def _cache_key(self, inputs: BatchInputs) -> tuple:
        campaign = self._campaign
        # config.identity() excludes the display name, so renamed
        # variants (sweep points, with_overrides copies) — and configs
        # differing only in scope knobs the compilation never sees —
        # share one compiled schedule.
        return (
            campaign.config.identity(),
            campaign.scope_config.samples_per_cycle,
            campaign.entry,
            campaign.window_cycles,
            inputs.signature(),
        )

    def compiled(self, inputs: BatchInputs) -> CompiledSchedule:
        """The (path, schedule, leakage) triple, compiled at most once.

        Consults the process-wide cache keyed by (program, config,
        scope, entry, window, input shape) so distinct campaigns over
        the same workload share one compilation.
        """
        if not self._campaign._schedule_input_independent():
            # Conditionally-executed non-branch instructions make the
            # schedule depend on input values, not just shape: compile
            # against exactly this batch and skip the shared cache.
            return self._campaign.compile_with(inputs)
        key = self._cache_key(inputs)
        per_program = _program_cache(self.program)
        compiled = per_program.get(key)
        if compiled is None:
            compiled = self._campaign.compile_with(inputs)
            per_program[key] = compiled
        else:
            # Seed the inner campaign's own cache so acquire() skips the
            # reference-executor pass entirely.
            self._campaign._compiled = compiled
            self._campaign._compiled_signature = inputs.signature()
        return compiled

    # -- acquisition ----------------------------------------------------

    def acquire(
        self,
        inputs: BatchInputs,
        power_transform: Callable[[np.ndarray], np.ndarray] | None = None,
        scope_seed: int | None = None,
    ) -> TraceSet:
        """One-shot (monolithic) acquisition, schedule cache included."""
        self.compiled(inputs)
        return self._campaign.acquire(
            inputs, power_transform=power_transform, scope_seed=scope_seed
        )

    def chunk_bounds(self, n_traces: int, chunk_size: int | None = None) -> list[tuple[int, int]]:
        """The ``[start, stop)`` trace ranges a stream will cover."""
        size = chunk_size if chunk_size is not None else self.chunk_size
        if size is None or size >= n_traces:
            return [(0, n_traces)]
        if size <= 0:
            raise ValueError(f"chunk size must be positive, got {size}")
        return [(lo, min(lo + size, n_traces)) for lo in range(0, n_traces, size)]

    def stream(
        self,
        inputs: BatchInputs,
        chunk_size: int | None = None,
        jobs: int | None = None,
        power_transform: Callable[[np.ndarray], np.ndarray] | None = None,
        power_transform_factory: Callable[[int], Callable[[np.ndarray], np.ndarray]]
        | None = None,
        backend: str | ExecutionBackend | None = None,
        retry: RetryPolicy | int | None = None,
        chunk_timeout: float | None = None,
        checkpoint: Checkpointer | None = None,
        transport: str | None = None,
    ) -> Iterator[TraceChunk]:
        """Yield the campaign as ordered, seed-stable trace chunks.

        ``transport`` picks how chunk results cross the process
        boundary: ``"pickle"`` (the default) serializes the slim
        ``(traces, table, power)`` payload through the pool pipe, while
        ``"shm"`` has workers write trace blocks into named
        ``multiprocessing.shared_memory`` segments and ship only a tiny
        descriptor — the parent maps each segment zero-copy (see
        ``repro.backends.shm``).  The bytes are identical either way;
        ``"shm"`` falls back to pickle, with a
        :class:`~repro.backends.BackendDegradationWarning`, on platforms
        without POSIX shared memory.

        ``power_transform`` applies one callable to every chunk's power
        matrix; ``power_transform_factory`` instead receives the chunk
        index and returns that chunk's transform — the hook that lets
        seeded environment models decorrelate their noise per chunk
        (:meth:`repro.os_sim.environment.Environment.reseeded`).

        ``backend`` picks where chunk tasks execute (a policy name or a
        live :class:`~repro.backends.ExecutionBackend`); the default
        ``"auto"`` parallelizes when ``jobs > 1``, degrading with a
        :class:`~repro.backends.BackendDegradationWarning` — never
        silently — when no parallel backend is usable.

        The resilience knobs (see ``docs/resilience.md``) are all off by
        default, in which case the historical dispatch paths run
        untouched:

        * ``retry`` — a retry count or a full
          :class:`~repro.backends.RetryPolicy`; each chunk task runs
          under it inside the backend, and retried chunks are
          byte-identical because every chunk is a pure function of its
          trace range.
        * ``chunk_timeout`` — a soft per-chunk deadline (seconds) on
          pool backends: a hung or killed worker surfaces as a
          :class:`~repro.backends.WatchdogTimeout`, the pool is rebuilt
          and the chunk re-dispatched.  A backend that exhausts its
          budget on timeouts is quarantined; under ``auto`` the stream
          then falls down the ``pool -> fork -> spawn -> serial``
          degradation ladder instead of failing.
        * ``checkpoint`` — a
          :class:`~repro.campaigns.checkpoint.Checkpointer`; completed
          chunk ranges (plus the driver's accumulator state) persist
          across kills and ``resume`` re-acquires only missing chunks.

        Any of them also enables per-chunk result validation
        (shape/dtype/finiteness on rewrap, rejected chunks raise
        :class:`~repro.backends.ChunkCorruption` and count as retryable
        failures).
        """
        if transport not in (None, "pickle", "shm"):
            raise ValueError(
                f"unknown transport {transport!r}; expected 'pickle' or 'shm'"
            )
        bounds, jobs, compiled, tasks, context = self._prepare(
            inputs,
            chunk_size,
            jobs,
            power_transform,
            power_transform_factory,
            retry,
            chunk_timeout,
            checkpoint,
        )
        codec = None
        if transport == "shm" and jobs > 1 and len(tasks) > 1:
            from repro.backends.shm import ShmCodec, shm_available

            if shm_available():
                # A fingerprint-derived token keeps segment names
                # deterministic across a kill/resume of the same run,
                # so recovery can always clean its predecessor up.
                token = self._stream_fingerprint(inputs, bounds)[:12]
                codec = ShmCodec(token=token)
                context.codec = codec
            else:
                warnings.warn(
                    "shared-memory transport requested but POSIX shared "
                    "memory is unavailable; falling back to pickle",
                    BackendDegradationWarning,
                    stacklevel=2,
                )
        run_tasks = tasks
        replay_last = False
        if checkpoint is not None:
            fingerprint = self._stream_fingerprint(inputs, bounds)
            completed = checkpoint.begin(fingerprint, n_chunks=len(tasks))
            run_tasks = [task for task in tasks if task.index not in completed]
            if not run_tasks and tasks:
                # Everything was already committed: re-acquire the last
                # chunk (pure function of its range, so free of side
                # effects on the statistics) and yield it flagged
                # ``replayed`` so drivers still see final-chunk metadata
                # without double-folding.
                run_tasks = [tasks[-1]]
                replay_last = True
        policy = backend if backend is not None else self.backend
        path, schedule, leakage = compiled
        try:
            for index, lo, payload in self._dispatch(
                context,
                run_tasks,
                policy=policy,
                jobs=jobs,
                checkpoint=checkpoint,
                replay_last=replay_last,
            ):
                if hasattr(payload, "materialize"):
                    # shm descriptor: attach, unlink, wrap zero-copy
                    # (cached — validation may have attached already).
                    payload = payload.materialize()
                if isinstance(payload, TraceSet):
                    # Rare: the chunk recompiled against a different path
                    # (data-dependent branch direction), or the backend
                    # ships whole trace sets; take it as-is.
                    trace_set = payload
                else:
                    # Common case: the worker's schedule matches the
                    # parent's compiled triple, so only the per-chunk
                    # data crossed the pipe; rewrap with shared objects.
                    traces, table, power = payload
                    trace_set = TraceSet(
                        traces=traces,
                        inputs=inputs.slice(lo, lo + traces.shape[0]),
                        schedule=schedule,
                        leakage=leakage,
                        table=table,
                        path=path,
                        power=power,
                    )
                yield TraceChunk(
                    start=lo, index=index, trace_set=trace_set, replayed=replay_last
                )
        finally:
            if codec is not None:
                # Unlink anything encoded but never consumed (a fault
                # aborting the stream, an abandoned generator, leftovers
                # of a killed previous run under this fingerprint).
                codec.cleanup(len(tasks))

    def reduce(
        self,
        inputs: BatchInputs,
        fold,
        chunk_size: int | None = None,
        jobs: int | None = None,
        power_transform: Callable[[np.ndarray], np.ndarray] | None = None,
        power_transform_factory: Callable[[int], Callable[[np.ndarray], np.ndarray]]
        | None = None,
        backend: str | ExecutionBackend | None = None,
        retry: RetryPolicy | int | None = None,
        chunk_timeout: float | None = None,
        checkpoint: Checkpointer | None = None,
    ):
        """Run the campaign comms-avoidingly: fold worker-side, merge states.

        ``fold`` is a :class:`~repro.campaigns.reduction.ChunkFold`.
        Each worker folds its chunk into a fresh accumulator and ships
        only the accumulator's compact sufficient-statistic state; the
        parent merges the states **in chunk order**, which keeps the
        merged result byte-identical to the serial fold (and keeps
        budget snapshots chunk-aligned).  Raw traces never cross the
        process boundary — statistics-only campaigns shrink their IPC
        by orders of magnitude (see ``BENCH_comms.json``).

        The resilience knobs behave exactly as for :meth:`stream`;
        per-chunk validation inspects the fold states (finiteness) and a
        retried chunk recomputes its state from scratch, so a recovered
        campaign merges each chunk exactly once.  With a ``checkpoint``,
        the *merged* accumulator state persists after every folded chunk
        (the checkpoint's ``state_fn``/``restore_fn`` default to the
        fold's ``freeze``/``thaw``); a resumed run re-acquires only
        missing chunks and merges them onto the restored state.

        Returns a :class:`~repro.campaigns.reduction.ReducedCampaign`
        whose ``value`` is the merged accumulator and whose
        ``trace_set`` is a zero-row metadata trace set over the
        compiled schedule.
        """
        from repro.campaigns.checkpoint import checkpoint_fingerprint as _fp
        from repro.campaigns.reduction import FoldCodec, ReducedCampaign

        bounds, jobs, compiled, tasks, context = self._prepare(
            inputs,
            chunk_size,
            jobs,
            power_transform,
            power_transform_factory,
            retry,
            chunk_timeout,
            checkpoint,
            validator=self._state_validator(),
        )
        context.codec = FoldCodec(fold)
        holder = {"acc": fold.create()}
        run_tasks = tasks
        if checkpoint is not None:
            if checkpoint.state_fn is None:
                checkpoint.state_fn = lambda: fold.freeze(holder["acc"])
            if checkpoint.restore_fn is None:
                checkpoint.restore_fn = lambda frozen: holder.__setitem__(
                    "acc", fold.thaw(frozen)
                )
            fingerprint = _fp(
                (
                    "repro.reduce/1",
                    self._stream_fingerprint(inputs, bounds),
                    _fold_digest(fold),
                )
            )
            completed = checkpoint.begin(fingerprint, n_chunks=len(tasks))
            run_tasks = [task for task in tasks if task.index not in completed]
        by_index = {task.index: task for task in tasks}
        policy = backend if backend is not None else self.backend
        for index, _lo, state in self._dispatch(
            context, run_tasks, policy=policy, jobs=jobs, checkpoint=checkpoint
        ):
            holder["acc"] = fold.merge_state(holder["acc"], by_index[index], state)
        path, schedule, leakage = compiled
        meta = TraceSet(
            traces=np.empty((0, leakage.n_samples), dtype=np.float32),
            inputs=inputs,
            schedule=schedule,
            leakage=leakage,
            table=None,
            path=path,
            power=None,
        )
        return ReducedCampaign(
            value=holder["acc"],
            trace_set=meta,
            n_traces=inputs.n_traces,
            n_chunks=len(tasks),
            backend={"policy": getattr(policy, "name", policy) or "auto", "jobs": jobs},
        )

    def _prepare(
        self,
        inputs: BatchInputs,
        chunk_size: int | None,
        jobs: int | None,
        power_transform,
        power_transform_factory,
        retry,
        chunk_timeout,
        checkpoint,
        validator: Callable | None = None,
    ):
        """The shared stream/reduce prelude: compile, calibrate, build tasks."""
        if power_transform is not None and power_transform_factory is not None:
            raise ValueError("pass power_transform or power_transform_factory, not both")
        inputs.validate()
        bounds = self.chunk_bounds(inputs.n_traces, chunk_size)
        jobs = self.jobs if jobs is None else max(1, jobs)
        # Compile before any fork so workers inherit the schedule, and
        # resolve the campaign's quantizer full-scale so every chunk —
        # in every worker — shares one LSB.  Calibration sees chunk 0's
        # power transform (factories must be pure functions of the
        # chunk index — parallel backends may evaluate factory(0) twice).
        compiled = self.compiled(inputs)
        transform0 = (
            power_transform_factory(0)
            if power_transform_factory is not None
            else power_transform
        )
        resilience = self._resilience_context(
            retry, chunk_timeout, checkpoint, compiled, validator=validator
        )
        # Calibration applies chunk 0's transform in the parent, so a
        # transient fault can strike here too; give it the same retry
        # budget the chunks get (index -1 in the fault report).
        self._retrying(
            resilience,
            lambda: self._calibrate_full_scale(inputs, bounds, transform0),
            "calibrate",
        )
        float32 = self._campaign.precision == "float32"
        tasks = [
            ChunkTask(
                index=index,
                lo=lo,
                hi=hi,
                scope_seed=self._chunk_scope_seed(index),
                trace_offset=lo if float32 else 0,
            )
            for index, (lo, hi) in enumerate(bounds)
        ]
        context = BackendContext(
            campaign=self._campaign,
            inputs=inputs,
            power_transform=power_transform,
            power_transform_factory=power_transform_factory,
            transform0=transform0,
            compiled=compiled,
            resilience=resilience,
        )
        return bounds, jobs, compiled, tasks, context

    def _dispatch(
        self,
        context: BackendContext,
        run_tasks: list[ChunkTask],
        *,
        policy,
        jobs: int,
        checkpoint: Checkpointer | None = None,
        replay_last: bool = False,
    ):
        """Resolve the backend and stream ``(index, lo, payload)`` results.

        Commit semantics: a chunk counts as delivered (and its
        checkpoint record is written) only once the consumer resumes
        this generator, i.e. after the driver finished folding it.
        Under an ``auto`` policy a :class:`BackendBroken` backend is
        quarantined and the undelivered chunks re-dispatched down the
        degradation ladder.
        """
        resilience = context.resilience
        ladder_eligible = policy is None or policy == "auto"
        resolved, owned = resolve_backend(
            policy, jobs=jobs, n_tasks=len(run_tasks), context=context
        )
        try:
            resolved.start()
            pending = list(run_tasks)
            delivered: set[int] = set()
            while pending:
                try:
                    for index, lo, payload in resolved.map_chunks(context, pending):
                        yield index, lo, payload
                        delivered.add(index)
                        if checkpoint is not None and not replay_last:
                            checkpoint.chunk_done(index)
                    pending = []
                except BackendBroken as error:
                    # The backend exhausted its watchdog retries.  Under
                    # an explicit policy that is the caller's problem;
                    # under auto, quarantine it and fall down the ladder
                    # (loudly), re-dispatching the undelivered chunks.
                    if not ladder_eligible:
                        raise
                    rung = next_rung(error.backend)
                    quarantine_backend(error.backend, str(error))
                    message = (
                        f"backend '{error.backend}' quarantined after repeated "
                        f"failures ({error}); degrading to '{rung}'"
                    )
                    warnings.warn(message, BackendDegradationWarning, stacklevel=2)
                    if resilience is not None:
                        resilience.report.record_quarantine(error.backend)
                        resilience.report.record_degradation(message)
                    if owned:
                        resolved.close()
                    resolved = make_backend(rung, jobs)
                    owned = True
                    resolved.start()
                    pending = [task for task in run_tasks if task.index not in delivered]
            if checkpoint is not None:
                checkpoint.finalize()
        finally:
            if owned:
                resolved.close()

    def _resilience_context(
        self,
        retry: RetryPolicy | int | None,
        chunk_timeout: float | None,
        checkpoint: Checkpointer | None,
        compiled: CompiledAcquisition,
        validator: Callable | None = None,
    ) -> ResilienceContext | None:
        """Build the stream's resilience state, or ``None`` when off.

        Any resilience knob also arms per-chunk validation (by default
        the trace-block validator; ``validator`` overrides it for
        encoded payloads such as fold states); the ambient fault report
        (a :class:`~repro.api.session.Session` collecting faults) is
        reused so events reach the result envelope.
        """
        if retry is None and chunk_timeout is None and checkpoint is None:
            return None
        if retry is None:
            policy = RetryPolicy()
        elif isinstance(retry, RetryPolicy):
            policy = retry
        else:
            policy = RetryPolicy.from_retries(int(retry))
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ValueError(f"chunk timeout must be positive, got {chunk_timeout}")
        context = ResilienceContext(
            policy=policy,
            chunk_timeout=chunk_timeout,
            validator=validator if validator is not None else self._chunk_validator(compiled),
        )
        ambient = active_report()
        if ambient is not None:
            context.report = ambient
        return context

    @staticmethod
    def _retrying(resilience: ResilienceContext | None, fn: Callable[[], None], label: str):
        """Run a parent-side step under the stream's retry policy."""
        if resilience is None:
            return fn()
        attempt = 1
        while True:
            try:
                return fn()
            except Exception as error:
                resilience.record_failure(error)
                if (
                    attempt >= resilience.policy.max_attempts
                    or not resilience.policy.retryable(error)
                ):
                    raise
                resilience.backoff(
                    task_index=-1, attempt=attempt, error=error, backend=label
                )
                attempt += 1

    def _chunk_validator(self, compiled: CompiledAcquisition):
        """Reject malformed chunk results before they reach the fold.

        Slim payloads must match the parent's compiled schedule exactly
        (row count, sample width, dtype); full trace sets may carry a
        divergent recompiled path, so only their row count and
        finiteness are checked.  Violations raise
        :class:`~repro.backends.ChunkCorruption` (retryable).
        """
        expected_samples = compiled.leakage.n_samples
        # Both precision chains store captured traces as float32 (the
        # mode governs intermediate arithmetic, not the output dtype).
        expected_dtype = np.dtype(np.float32)

        def validate(task: ChunkTask, payload) -> None:
            if hasattr(payload, "materialize"):
                # shm descriptor: attach once here; the rewrap reuses
                # the cached mapping.  A vanished segment raises
                # ChunkCorruption itself (retryable).
                payload = payload.materialize()
            slim = not isinstance(payload, TraceSet)
            traces = payload[0] if slim else payload.traces
            rows = task.hi - task.lo
            if traces.ndim != 2 or traces.shape[0] != rows:
                raise ChunkCorruption(
                    f"chunk {task.index}: trace block has shape {traces.shape}, "
                    f"expected ({rows}, n_samples)"
                )
            if slim and traces.shape[1] != expected_samples:
                raise ChunkCorruption(
                    f"chunk {task.index}: {traces.shape[1]} samples per trace, "
                    f"expected {expected_samples}"
                )
            if slim and traces.dtype != expected_dtype:
                raise ChunkCorruption(
                    f"chunk {task.index}: traces have dtype {traces.dtype}, "
                    f"expected {expected_dtype}"
                )
            if not np.isfinite(traces).all():
                raise ChunkCorruption(
                    f"chunk {task.index}: non-finite values in traces"
                )

        return validate

    @staticmethod
    def _state_validator() -> Callable:
        """Reject corrupted fold states before they reach the merge.

        Fold states are nested dicts/lists of numpy arrays and scalars;
        a corrupted chunk (non-finite traces, a poisoned transform)
        surfaces as non-finite moments.  Violations raise
        :class:`~repro.backends.ChunkCorruption` (retryable) exactly
        like the trace-block validator does for raw payloads.
        """

        def check(value) -> None:
            if isinstance(value, dict):
                for sub in value.values():
                    check(sub)
            elif isinstance(value, (list, tuple)):
                for sub in value:
                    check(sub)
            elif isinstance(value, np.ndarray):
                if value.dtype.kind == "f" and not np.isfinite(value).all():
                    raise ValueError("non-finite array in fold state")
            elif isinstance(value, float) and not np.isfinite(value):
                raise ValueError("non-finite scalar in fold state")

        def validate(task: ChunkTask, payload) -> None:
            try:
                check(payload)
            except ValueError as error:
                raise ChunkCorruption(f"chunk {task.index}: {error}") from None

        return validate

    def _stream_fingerprint(self, inputs: BatchInputs, bounds: list[tuple[int, int]]) -> str:
        """What a checkpoint must match to be resumable against this stream.

        Covers the full campaign recipe *and* the chunking (the bounds
        decide trace ranges) *and* the input content — anything that
        changes the bytes a resumed run would produce.
        """
        campaign = self._campaign
        return checkpoint_fingerprint(
            (
                "repro.stream/1",
                campaign.config.identity(),
                campaign.scope_config,
                campaign.entry,
                campaign.window_cycles,
                campaign.precision,
                campaign.keep_power,
                self.seed,
                tuple(bounds),
                inputs.signature(),
                digest_inputs(inputs),
            )
        )

    def _chunk_scope_seed(self, index: int) -> int:
        """The oscilloscope seed of chunk ``index``.

        float64-exact mode keeps the historical per-chunk derived
        streams (chunk 0 byte-identical to a monolithic run); float32
        mode shares one counter-based stream across all chunks — the
        chunk's ``trace_offset`` separates the draws, which is what
        makes a campaign's noise independent of its chunking.
        """
        if self._campaign.precision == "float32":
            return derive_seed(self.seed, 0)
        return derive_seed(self.seed, index)

    def _calibrate_full_scale(
        self,
        inputs: BatchInputs,
        bounds: list[tuple[int, int]],
        power_transform: Callable[[np.ndarray], np.ndarray] | None,
    ) -> None:
        """Pin the campaign's auto-ranged quantizer full-scale.

        With ``adc_range=None`` the historical chunked path quantized
        every chunk against its own observed spread, i.e. a different
        LSB per chunk.  Before streaming (and before any fork), this
        resolves one deterministic full-scale from the campaign's
        leading-trace power — the same rule a monolithic float32
        capture applies internally — and pins it on the inner campaign.

        Monolithic float64-exact runs (a single chunk) are left alone:
        their per-capture auto-range is part of the bit-exact contract.
        """
        campaign = self._campaign
        config = campaign.scope_config
        if config.quantize_bits is None or config.adc_range is not None:
            return
        if campaign.pinned_full_scale is not None:
            return
        if campaign.precision != "float32" and len(bounds) <= 1:
            return
        compiled = self.compiled(inputs)
        k = min(config.calibration_traces, inputs.n_traces)
        result, compiled = campaign._run_checked(
            inputs.slice(0, k), compiled, reused=True
        )
        # Evaluate the prefix in the campaign's own dtype so the pinned
        # value is bit-identical to what a monolithic float32 capture
        # would self-calibrate from.
        power = compiled.leakage.evaluate(
            result.table,
            campaign.profile,
            dtype=np.float32 if campaign.precision == "float32" else np.float64,
        )
        if power_transform is not None:
            power = power_transform(power)
            if not np.isfinite(power).all():
                # A corrupted transform must not silently poison the
                # campaign-wide LSB; raise (retryable) instead.
                raise ChunkCorruption(
                    "calibration power contains non-finite values; refusing "
                    "to pin a corrupted quantizer full-scale"
                )
        scope = Oscilloscope(config, seed=self._chunk_scope_seed(0))
        campaign.pinned_full_scale = scope.calibrate_full_scale(power)

