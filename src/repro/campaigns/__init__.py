"""Streaming campaign subsystem: engine, accumulators, scenario registry.

The shared acquisition→attack path of every experiment in the repo:

* :mod:`repro.campaigns.engine` — :class:`StreamingCampaign`, chunked
  constant-memory acquisition with a compiled-schedule cache and
  optional multiprocessing fan-out;
* :mod:`repro.campaigns.accumulators` — online sufficient statistics
  (Pearson, SNR, Welch-t, CPA) that fold chunks into the same results
  the monolithic two-pass code produces;
* :mod:`repro.campaigns.checkpoint` — atomic, versioned
  checkpoint/resume state for killed-and-restarted campaigns;
* :mod:`repro.campaigns.registry` — the declarative scenario registry
  the CLI and benchmarks enumerate.

Attribute access is lazy (PEP 562) so that import-light consumers —
the CLI parser enumerating scenario names, shell completion — do not
pull numpy/scipy through the engine and accumulator modules.
"""

from typing import Any

_EXPORTS = {
    "CheckpointError": "repro.campaigns.checkpoint",
    "CheckpointMismatch": "repro.campaigns.checkpoint",
    "CheckpointStore": "repro.campaigns.checkpoint",
    "Checkpointer": "repro.campaigns.checkpoint",
    "BudgetSplitter": "repro.campaigns.accumulators",
    "CpaAccumulator": "repro.campaigns.accumulators",
    "CpaBudgetSnapshots": "repro.campaigns.accumulators",
    "OnlineCorrAccumulator": "repro.campaigns.accumulators",
    "OnlineMeanVar": "repro.campaigns.accumulators",
    "OnlineSnrAccumulator": "repro.campaigns.accumulators",
    "OnlineTTestAccumulator": "repro.campaigns.accumulators",
    "StreamingCampaign": "repro.campaigns.engine",
    "TraceChunk": "repro.campaigns.engine",
    "RunOptions": "repro.campaigns.registry",
    "Scenario": "repro.campaigns.registry",
    "register": "repro.campaigns.registry",
    "registry": "repro.campaigns",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    import importlib

    if name == "registry":
        return importlib.import_module("repro.campaigns.registry")
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module_name), name)
