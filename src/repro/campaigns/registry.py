"""The scenario registry: every reproducible workload, one declaration.

A :class:`Scenario` names one end-to-end workload — a program under a
pipeline configuration, an input distribution, and the analysis run over
the acquired traces — and binds it to a runner that executes it through
the streaming engine.  Experiment modules declare their scenario at
import time; the :class:`~repro.api.session.Session` façade, the CLI,
the benchmark harness and future workloads enumerate the registry
instead of hand-wiring acquisition pipelines.

Registering a new scenario::

    from repro.api import Capability, RunRequest
    from repro.campaigns.registry import Scenario, register

    register(Scenario(
        name="my-attack",
        title="CPA with my model",
        description="...",
        runner=lambda request: run_my_attack(
            n_traces=request.n_traces,
            chunk_size=request.chunk_size,
            jobs=request.jobs,
        ),
        default_traces=1000,
        capabilities=frozenset({
            Capability.TRACES, Capability.CHUNKING, Capability.JOBS,
        }),
    ))

The runner receives a *resolved* :class:`~repro.api.request.RunRequest`
(scenario defaults already applied, every knob validated against the
declared capability set) and returns any object implementing the
:class:`~repro.api.envelope.ResultEnvelope` protocol — ``render()``,
``to_json()``, ``artifacts()`` and a ``matches_paper`` property.

Legacy surface: the pre-capability ``RunOptions`` dataclass and the
``supports_chunking``/``supports_jobs``/``supports_precision``/
``supports_grid`` constructor booleans keep working for one release
(they emit :class:`DeprecationWarning` and map onto the capability
set); new code uses ``repro.api``.
"""

from __future__ import annotations

import warnings
from dataclasses import InitVar, dataclass, field
from typing import Any, Callable, Iterable

from repro.api.capabilities import Capability

#: Legacy constructor boolean -> the capability it declared.
_LEGACY_SUPPORTS = {
    "supports_chunking": Capability.CHUNKING,
    "supports_jobs": Capability.JOBS,
    "supports_precision": Capability.PRECISION,
    "supports_grid": Capability.GRID,
}


@dataclass(frozen=True)
class _RunOptions:
    """Deprecated execution knobs (use :class:`repro.api.RunRequest`)."""

    n_traces: int | None = None
    reps: int = 200
    chunk_size: int | None = None
    jobs: int = 1
    seed: int | None = None
    precision: str | None = None
    grid: tuple[str, ...] | None = None


# Keep the public (deprecated) name on reprs and pickles.
_RunOptions.__name__ = "RunOptions"
_RunOptions.__qualname__ = "RunOptions"


def __getattr__(name: str) -> Any:
    if name == "RunOptions":
        warnings.warn(
            "RunOptions is deprecated; build a repro.api.RunRequest and run it "
            "through repro.api.Session (or Scenario.run) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _RunOptions
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class Scenario:
    """One registered workload."""

    name: str
    title: str
    description: str
    runner: Callable[[Any], Any]
    #: trace budget used when the caller does not override it (None for
    #: timing-only scenarios that do not acquire traces)
    default_traces: int | None = None
    #: microbenchmark repetitions for REPS-capable (CPI) scenarios
    default_reps: int = 200
    #: the execution knobs this scenario's runner honors; a RunRequest
    #: setting anything else raises CapabilityError before dispatch
    capabilities: frozenset[Capability] = field(default_factory=frozenset)
    tags: tuple[str, ...] = ()
    # Deprecated boolean declarations, mapped into `capabilities`.
    supports_chunking: InitVar[bool | None] = None
    supports_jobs: InitVar[bool | None] = None
    supports_precision: InitVar[bool | None] = None
    supports_grid: InitVar[bool | None] = None

    def __post_init__(
        self,
        supports_chunking: bool | None,
        supports_jobs: bool | None,
        supports_precision: bool | None,
        supports_grid: bool | None,
    ) -> None:
        legacy = {
            "supports_chunking": supports_chunking,
            "supports_jobs": supports_jobs,
            "supports_precision": supports_precision,
            "supports_grid": supports_grid,
        }
        declared = {name for name, value in legacy.items() if value is not None}
        if not isinstance(self.capabilities, frozenset):
            object.__setattr__(self, "capabilities", frozenset(self.capabilities))
        if declared:
            warnings.warn(
                f"Scenario({self.name!r}): the supports_* booleans are deprecated; "
                "declare capabilities=frozenset({Capability...}) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            merged = set(self.capabilities)
            merged.update(
                _LEGACY_SUPPORTS[name] for name in declared if legacy[name]
            )
            if self.default_traces is not None:
                merged.update({Capability.TRACES, Capability.SEED})
            object.__setattr__(self, "capabilities", frozenset(merged))
        if not self.capabilities and self.default_traces is not None:
            # Legacy declarations predate the TRACES/SEED capabilities: a
            # pre-capability registration with a trace budget (with or
            # without any supports_* boolean) always accepted both.  A
            # new-style declaration lists its capabilities explicitly, so
            # an empty set + a trace budget can only be the old API.
            object.__setattr__(
                self,
                "capabilities",
                frozenset({Capability.TRACES, Capability.SEED}),
            )

    def has(self, capability: Capability) -> bool:
        return capability in self.capabilities

    def run(self, request: Any = None) -> Any:
        """Resolve ``request`` against this scenario and execute it.

        ``request`` may be a :class:`repro.api.RunRequest` (validated
        strictly: unsupported knobs raise
        :class:`~repro.api.capabilities.CapabilityError`), ``None``
        (scenario defaults), or a legacy ``RunOptions`` (lenient, like
        the old CLI: unsupported knobs are dropped).  Defaulting lives
        in :meth:`RunRequest.resolve` — not here — so per-scenario
        defaults (``default_traces``, ``default_reps``) exist in exactly
        one place.
        """
        from dataclasses import replace

        from repro.api.request import RunRequest

        if request is None:
            request = RunRequest()
        elif not isinstance(request, RunRequest):
            # Legacy RunOptions (or any duck-typed equivalent): keep the
            # historical semantics — n_traces/reps/seed were always
            # forwarded to the runner, only the opt-in knobs (chunking,
            # jobs, precision, grid) were capability-gated (ignored when
            # unsupported, as the old CLI did).
            legacy = RunRequest.from_options(request)
            gated, _dropped = replace(
                legacy, n_traces=None, reps=None, seed=None
            ).narrowed_to(self)
            forwarded = replace(
                gated, n_traces=legacy.n_traces, reps=legacy.reps, seed=legacy.seed
            )
            return self.runner(forwarded.fill_defaults(self))
        return self.runner(request.resolve(self))


_REGISTRY: dict[str, Scenario] = {}
_BUILTINS_LOADED = False

#: The scenarios the experiment drivers register, known statically so
#: callers (the CLI parser, shell completion) can enumerate names
#: without importing the numpy/scipy-heavy driver modules.
BUILTIN_NAMES = (
    "ablations",
    "baselines",
    "corpus",
    "figure2",
    "figure3",
    "figure4",
    "success-curves",
    "sweep",
    "table1",
    "table2",
)


def known_names() -> list[str]:
    """Registered + builtin scenario names, with no import side effects."""
    return sorted(set(BUILTIN_NAMES) | set(_REGISTRY))


def register(scenario: Scenario) -> Scenario:
    """Add (or replace, idempotently by name) a scenario."""
    _REGISTRY[scenario.name] = scenario
    return scenario


def load_builtin_scenarios() -> None:
    """Import the experiment drivers so their scenarios register."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Imported for their registration side effect only.
    from repro.experiments import (  # noqa: F401
        ablations,
        baseline_models,
        figure2,
        figure3,
        figure4,
        success_curves,
        table1,
        table2,
    )
    from repro.corpus import scenario as corpus_scenario  # noqa: F401
    from repro.sweeps import scenario  # noqa: F401

    _BUILTINS_LOADED = True


def get(name: str) -> Scenario:
    load_builtin_scenarios()
    scenario = _REGISTRY.get(name)
    if scenario is None:
        known = ", ".join(names())
        raise KeyError(f"unknown scenario {name!r}; registered: {known}")
    return scenario


def names() -> list[str]:
    load_builtin_scenarios()
    return sorted(_REGISTRY)


def scenarios() -> Iterable[Scenario]:
    load_builtin_scenarios()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def run(name: str, request: Any = None) -> Any:
    """Look a scenario up and execute it."""
    return get(name).run(request)
