"""The scenario registry: every reproducible workload, one declaration.

A :class:`Scenario` names one end-to-end workload — a program under a
pipeline configuration, an input distribution, and the analysis run over
the acquired traces — and binds it to a runner that executes it through
the streaming engine.  Experiment modules declare their scenario at
import time; the CLI, the benchmark harness and future workloads
enumerate the registry instead of hand-wiring acquisition pipelines.

Registering a new scenario::

    from repro.campaigns.registry import Scenario, register

    register(Scenario(
        name="my-attack",
        title="CPA with my model",
        description="...",
        runner=lambda options: run_my_attack(
            n_traces=options.n_traces or 1000,
            chunk_size=options.chunk_size,
            jobs=options.jobs,
        ),
        default_traces=1000,
        supports_chunking=True,
        supports_jobs=True,
    ))

The runner receives a :class:`RunOptions` and returns any object with a
``render() -> str`` method (and, conventionally, a ``matches_paper``
property for shape-checked reproductions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable


@dataclass(frozen=True)
class RunOptions:
    """Execution knobs a caller passes down to a scenario runner."""

    n_traces: int | None = None
    reps: int = 200
    chunk_size: int | None = None
    jobs: int = 1
    seed: int | None = None
    #: acquisition-chain precision override ("float64-exact"/"float32");
    #: None keeps each scenario's default
    precision: str | None = None
    #: sweep-grid arguments ("key=val[,val...]" axes or a curated grid
    #: name); only grid-aware scenarios (supports_grid) consume them
    grid: tuple[str, ...] | None = None


@dataclass(frozen=True)
class Scenario:
    """One registered workload."""

    name: str
    title: str
    description: str
    runner: Callable[[RunOptions], Any]
    #: trace budget used when the caller does not override it (None for
    #: timing-only scenarios that do not acquire traces)
    default_traces: int | None = None
    #: the runner honors RunOptions.chunk_size (streams through the engine)
    supports_chunking: bool = False
    #: the runner honors RunOptions.jobs (multiprocessing fan-out)
    supports_jobs: bool = False
    #: the runner honors RunOptions.precision (float32 capture chain)
    supports_precision: bool = False
    #: the runner honors RunOptions.grid (design-space sweep axes)
    supports_grid: bool = False
    tags: tuple[str, ...] = ()

    def run(self, options: RunOptions | None = None) -> Any:
        return self.runner(options if options is not None else RunOptions())


_REGISTRY: dict[str, Scenario] = {}
_BUILTINS_LOADED = False

#: The scenarios the experiment drivers register, known statically so
#: callers (the CLI parser, shell completion) can enumerate names
#: without importing the numpy/scipy-heavy driver modules.
BUILTIN_NAMES = (
    "ablations",
    "baselines",
    "figure2",
    "figure3",
    "figure4",
    "success-curves",
    "sweep",
    "table1",
    "table2",
)


def known_names() -> list[str]:
    """Registered + builtin scenario names, with no import side effects."""
    return sorted(set(BUILTIN_NAMES) | set(_REGISTRY))


def register(scenario: Scenario) -> Scenario:
    """Add (or replace, idempotently by name) a scenario."""
    _REGISTRY[scenario.name] = scenario
    return scenario


def load_builtin_scenarios() -> None:
    """Import the experiment drivers so their scenarios register."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Imported for their registration side effect only.
    from repro.experiments import (  # noqa: F401
        ablations,
        baseline_models,
        figure2,
        figure3,
        figure4,
        success_curves,
        table1,
        table2,
    )
    from repro.sweeps import scenario  # noqa: F401

    _BUILTINS_LOADED = True


def get(name: str) -> Scenario:
    load_builtin_scenarios()
    scenario = _REGISTRY.get(name)
    if scenario is None:
        known = ", ".join(names())
        raise KeyError(f"unknown scenario {name!r}; registered: {known}")
    return scenario


def names() -> list[str]:
    load_builtin_scenarios()
    return sorted(_REGISTRY)


def scenarios() -> Iterable[Scenario]:
    load_builtin_scenarios()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def run(name: str, options: RunOptions | None = None) -> Any:
    """Look a scenario up and execute it."""
    return get(name).run(options)
