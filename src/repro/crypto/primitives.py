"""Memory primitives for leakage evaluation: memcpy and constant-time compare.

Side-channel surveys (Lou et al. 2021, Ge et al. 2016) stress that
leakage evaluation must cover the mundane primitives crypto code leans
on, not just the cipher kernels: a byte-wise ``memcpy`` drags every
payload byte through the load/store datapath, and a constant-time
comparison architecturally computes ``input ^ secret`` for every byte —
branch-free, yet each XOR result rides the operand buses.

Both programs are fully unrolled byte loops (data-independent control
flow).  The compare accumulates ``diff |= in[i] ^ secret[i]`` and stores
the verdict word; the CPA model targets ``HW(in[0] ^ guess)``, which
peaks at the secret byte (and, with opposite sign, at its complement —
the usual XOR-model ambiguity).  For ``memcpy`` the "key" is the
identity (guess 0): the copied byte itself is the leaking intermediate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.parser import assemble
from repro.isa.program import Program


@dataclass(frozen=True)
class PrimitiveLayout:
    """Memory map shared by the primitive programs."""

    src: int = 0x26000  # 16 bytes, per-trace input buffer
    dst: int = 0x26010  # 16 bytes, memcpy destination
    secret: int = 0x26020  # 16 bytes, baked compare reference
    verdict: int = 0x26030  # 4 bytes, 0 iff buffers equal


PRIMITIVE_LAYOUT = PrimitiveLayout()


def memcpy_source(n_bytes: int = 16, layout: PrimitiveLayout = PRIMITIVE_LAYOUT) -> str:
    """Byte-wise copy of the input buffer: ldrb / strb per byte."""
    if not 1 <= n_bytes <= 16:
        raise ValueError("n_bytes must be in 1..16")
    lines = [
        "memcpy16:",
        "    ldr r4, =prim_src",
        "    ldr r5, =prim_dst",
    ]
    for i in range(n_bytes):
        lines += [
            f"    ldrb r0, [r4, #{i}]",
            f"    strb r0, [r5, #{i}]",
        ]
    lines += [
        "memcpy_done:",
        "    bx lr",
    ]
    lines += _data_section(bytes(16), layout)
    return "\n".join(lines)


def memcpy_program(n_bytes: int = 16, layout: PrimitiveLayout = PRIMITIVE_LAYOUT) -> Program:
    return assemble(memcpy_source(n_bytes, layout))


def ct_compare_source(secret: bytes, layout: PrimitiveLayout = PRIMITIVE_LAYOUT) -> str:
    """Branch-free comparison of the input buffer against a baked secret."""
    if len(secret) != 16:
        raise ValueError("secret must be 16 bytes")
    lines = [
        "ct_compare:",
        "    ldr r4, =prim_src",
        "    ldr r5, =prim_secret",
        "    mov r6, #0",
    ]
    for i in range(16):
        lines += [
            f"    ldrb r0, [r4, #{i}]",
            f"    ldrb r1, [r5, #{i}]",
            "    eor r0, r0, r1",
            "    orr r6, r6, r0",
        ]
    lines += [
        "    ldr r0, =prim_verdict",
        "    str r6, [r0]",
        "ct_compare_done:",
        "    bx lr",
    ]
    lines += _data_section(secret, layout)
    return "\n".join(lines)


def ct_compare_program(secret: bytes, layout: PrimitiveLayout = PRIMITIVE_LAYOUT) -> Program:
    return assemble(ct_compare_source(secret, layout))


def _data_section(secret: bytes, layout: PrimitiveLayout) -> list[str]:
    return [
        f"    .org {layout.src:#x}",
        "prim_src:",
        "    .space 16",
        f"    .org {layout.dst:#x}",
        "prim_dst:",
        "    .space 16",
        f"    .org {layout.secret:#x}",
        "prim_secret:",
        "    .byte " + ", ".join(str(b) for b in secret),
        f"    .org {layout.verdict:#x}",
        "prim_verdict:",
        "    .word 0",
    ]
