"""The attacked AES-128 implementation, in the paper's code shape.

Section 5 analyzes a byte-oriented reference AES whose compiled form has
very specific leakage-relevant features, all reproduced here:

* **SubBytes**: per byte, a ``ldrb`` of the state byte, a table lookup
  ``ldrb`` indexed off the S-box base, and a ``strb`` back — "the load
  and subsequent store of the value from the AES substitution table";
* **ShiftRows**: each rotated row is composed in a register from byte
  loads with "three leaking time instants where the said register is
  shifted progressively by one byte at once", the composed word is
  stored to a row buffer, then scattered back into the column-major
  state;
* after ShiftRows a zero is stored ("the MDR, which contains the last
  stored value, receives a zero value to be stored back into memory");
* **MixColumns**: the GF(2^8) doubling is a *called*, not inlined,
  function (``bl xtime_fn``) with callee-save stack spills and fills,
  "additional leakage ... due to spills and fills";
* the doubling itself is branchless (mask from the MSB), so control
  flow is input-independent — required by the batch executor and true
  of constant-time reference code.

The key schedule is precomputed and baked into the data image (the
attack targets the first round, whose round key is the cipher key).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes import aes128_round_keys
from repro.crypto.sbox import SBOX
from repro.isa.parser import assemble
from repro.isa.program import Program


@dataclass(frozen=True)
class AesLayout:
    """Memory map of the AES program."""

    state: int = 0x11000
    round_keys: int = 0x12000
    sbox: int = 0x13000
    saved_lr: int = 0x14000
    row_buffer: int = 0x14010
    zero_scratch: int = 0x14020
    stack_top: int = 0x15000


LAYOUT = AesLayout()

# Register conventions used throughout the generated code:
#   r4 state base, r5 round-key pointer, r6 S-box base, r7 round counter.
#   ARK/SB scratch: r0, r1.  ShiftRows: r0 row word, r1 byte, r2 row buf.
#   MixColumns: r8-r11 column bytes, r12 column xor, r0 xtime arg/result,
#   r3 output accumulator.


def _add_round_key(lines: list[str]) -> None:
    lines.append("@ ---- AddRoundKey ----")
    for i in range(16):
        lines.append(f"    ldrb r0, [r4, #{i}]")
        lines.append(f"    ldrb r1, [r5, #{i}]")
        lines.append("    eor r0, r0, r1")
        lines.append(f"    strb r0, [r4, #{i}]")


def _sub_bytes(lines: list[str]) -> None:
    lines.append("@ ---- SubBytes: ldrb state, ldrb table, strb state ----")
    for i in range(16):
        lines.append(f"    ldrb r0, [r4, #{i}]")
        lines.append("    ldrb r0, [r6, r0]")
        lines.append(f"    strb r0, [r4, #{i}]")


def _shift_rows(lines: list[str]) -> None:
    lines.append("@ ---- ShiftRows: compose each rotated row with shifts ----")
    lines.append("    ldr r2, =row_buffer")
    for row in range(1, 4):
        source = [row + 4 * ((col + row) % 4) for col in range(4)]
        lines.append(f"@ row {row}")
        lines.append(f"    ldrb r0, [r4, #{source[0]}]")
        for lane in range(1, 4):
            lines.append(f"    ldrb r1, [r4, #{source[lane]}]")
            lines.append(f"    orr r0, r0, r1, lsl #{8 * lane}")
        lines.append("    str r0, [r2]")
        for lane in range(4):
            lines.append(f"    ldrb r1, [r2, #{lane}]")
            lines.append(f"    strb r1, [r4, #{row + 4 * lane}]")
    # Compiler artifact the paper observes: a zero is stored right after
    # ShiftRows, putting the MDR through a transition to zero.
    lines.append("@ zero store observed after ShiftRows (MDR -> 0)")
    lines.append("    mov r0, #0")
    lines.append("    ldr r1, =zero_scratch")
    lines.append("    str r0, [r1]")


def _mix_columns(lines: list[str]) -> None:
    lines.append("@ ---- MixColumns: shift-reduce products via called helper ----")
    for col in range(4):
        base = 4 * col
        lines.append(f"@ column {col}")
        lines.append(f"    ldrb r8, [r4, #{base}]")
        lines.append(f"    ldrb r9, [r4, #{base + 1}]")
        lines.append(f"    ldrb r10, [r4, #{base + 2}]")
        lines.append(f"    ldrb r11, [r4, #{base + 3}]")
        lines.append("    eor r12, r8, r9")
        lines.append("    eor r12, r12, r10")
        lines.append("    eor r12, r12, r11")
        pairs = [("r8", "r9"), ("r9", "r10"), ("r10", "r11"), ("r11", "r8")]
        for lane, (a, b) in enumerate(pairs):
            lines.append(f"    eor r0, {a}, {b}")
            lines.append("    bl xtime_fn")
            lines.append(f"    eor r3, {a}, r12")
            lines.append("    eor r3, r3, r0")
            lines.append(f"    strb r3, [r4, #{base + lane}]")


def _xtime_function(lines: list[str]) -> None:
    lines.append("@ ---- xtime: branchless GF(2^8) doubling, not inlined ----")
    lines.append("xtime_fn:")
    lines.append("    str r1, [sp, #-4]   @ callee-save spill")
    lines.append("    str r2, [sp, #-8]")
    lines.append("    lsl r1, r0, #1")
    lines.append("    lsr r2, r0, #7")
    lines.append("    rsb r2, r2, #0      @ 0x00000000 or 0xffffffff")
    lines.append("    and r2, r2, #0x1b")
    lines.append("    eor r0, r1, r2")
    lines.append("    and r0, r0, #0xff")
    lines.append("    ldr r1, [sp, #-4]   @ fill")
    lines.append("    ldr r2, [sp, #-8]")
    lines.append("    bx lr")


def _data_section(key: bytes, layout: AesLayout) -> list[str]:
    round_keys = b"".join(aes128_round_keys(key))
    lines = [f"    .org {layout.round_keys:#x}", "round_keys_data:"]
    for off in range(0, len(round_keys), 16):
        chunk = ", ".join(str(b) for b in round_keys[off : off + 16])
        lines.append(f"    .byte {chunk}")
    lines.append(f"    .org {layout.sbox:#x}")
    lines.append("sbox_table:")
    for off in range(0, 256, 16):
        chunk = ", ".join(str(b) for b in SBOX[off : off + 16])
        lines.append(f"    .byte {chunk}")
    lines.append(f"    .org {layout.saved_lr:#x}")
    lines.append("saved_lr:")
    lines.append("    .word 0")
    lines.append(f"    .org {layout.row_buffer:#x}")
    lines.append("row_buffer:")
    lines.append("    .word 0")
    lines.append(f"    .org {layout.zero_scratch:#x}")
    lines.append("zero_scratch:")
    lines.append("    .word 0")
    lines.append(f"    .org {layout.state:#x}")
    lines.append("state:")
    lines.append("    .space 16")
    return lines


def aes128_source(key: bytes, n_rounds: int = 10, layout: AesLayout = LAYOUT) -> str:
    """Generate the full encryption (or a truncated ``n_rounds`` prefix).

    The plaintext is expected at ``layout.state`` before entry; the
    (partial) ciphertext replaces it.  Labels mark every primitive
    boundary so experiments can map pipeline cycles back to AES phases.
    """
    if not 1 <= n_rounds <= 10:
        raise ValueError("n_rounds must be in 1..10")
    lines: list[str] = []
    lines.append("aes_main:")
    lines.append("    ldr r4, =state")
    lines.append("    ldr r5, =round_keys_data")
    lines.append("    ldr r6, =sbox_table")
    lines.append("    ldr r3, =saved_lr")
    lines.append("    str lr, [r3]")
    lines.append(f"    ldr sp, ={layout.stack_top:#x}")
    lines.append("trigger_start:")
    lines.append("ark0_start:")
    _add_round_key(lines)
    main_rounds = n_rounds - 1
    if main_rounds > 0:
        lines.append(f"    mov r7, #{main_rounds}")
        lines.append("round_loop:")
        lines.append("sb_start:")
        _sub_bytes(lines)
        lines.append("shr_start:")
        _shift_rows(lines)
        lines.append("mc_start:")
        _mix_columns(lines)
        lines.append("ark_start:")
        lines.append("    add r5, r5, #16")
        _add_round_key(lines)
        lines.append("round_end:")
        lines.append("    subs r7, r7, #1")
        lines.append("    bne round_loop")
    lines.append("final_sb:")
    _sub_bytes(lines)
    lines.append("final_shr:")
    _shift_rows(lines)
    lines.append("final_ark:")
    lines.append("    add r5, r5, #16")
    if main_rounds == 0:
        # Truncated one-round variant: final ARK uses round key 1.
        pass
    _add_round_key(lines)
    lines.append("trigger_end:")
    lines.append("    ldr r3, =saved_lr")
    lines.append("    ldr lr, [r3]")
    lines.append("    bx lr")
    _xtime_function(lines)
    lines.extend(_data_section(key, layout))
    return "\n".join(lines)


def aes128_program(key: bytes, n_rounds: int = 10, layout: AesLayout = LAYOUT) -> Program:
    """Assemble the AES implementation for the given key."""
    return assemble(aes128_source(key, n_rounds=n_rounds, layout=layout))


def round1_only_source(key: bytes, layout: AesLayout = LAYOUT) -> str:
    """AddRoundKey + SubBytes + ShiftRows + MixColumns of round 1 only.

    This is the window Figure 3 plots.  The program halts after the
    first MixColumns (no trailing AddRoundKey), leaving round-1
    intermediates in the state buffer.
    """
    lines: list[str] = []
    lines.append("aes_round1:")
    lines.append("    ldr r4, =state")
    lines.append("    ldr r5, =round_keys_data")
    lines.append("    ldr r6, =sbox_table")
    lines.append("    ldr r3, =saved_lr")
    lines.append("    str lr, [r3]")
    lines.append(f"    ldr sp, ={layout.stack_top:#x}")
    lines.append("trigger_start:")
    lines.append("ark0_start:")
    _add_round_key(lines)
    lines.append("sb_start:")
    _sub_bytes(lines)
    lines.append("shr_start:")
    _shift_rows(lines)
    lines.append("mc_start:")
    _mix_columns(lines)
    lines.append("trigger_end:")
    lines.append("    ldr r3, =saved_lr")
    lines.append("    ldr lr, [r3]")
    lines.append("    bx lr")
    _xtime_function(lines)
    lines.extend(_data_section(key, layout))
    return "\n".join(lines)


def round1_only_program(key: bytes, layout: AesLayout = LAYOUT) -> Program:
    return assemble(round1_only_source(key, layout=layout))
