"""Table-free AES S-box: branchless GF(2^8) arithmetic instead of a table.

Bitsliced / table-free S-boxes are the standard software hardening
against cache- and table-index leakage: the substitution is computed as
``affine(x^254)`` with a fixed square-and-multiply addition chain, so
there is no table in memory and the instruction path is identical for
every input byte.  The microarchitectural question this workload poses
is whether the *datapath* (operand buses, forwarding, register writes)
still leaks the intermediates the table never exposes.

The GF(2^8) product is a called, branchless shift-and-add routine (mask
from the multiplier LSB, reduction mask from the carry bit) with eight
unrolled iterations — the same "constant-time helper via ``bl``" shape
as the AES ``xtime_fn``.  The addition chain is

    a^2, a^3, a^6, a^12, a^15, a^30, a^60, a^120, a^240,
    a^252 = a^240 * a^12,  a^254 = a^252 * a^2

(7 squarings + 4 products).  ``a = 0`` needs no special case: every
product with 0 is 0 and ``affine(0) = 0x63 = S[0]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.sbox import SBOX, gf_mul
from repro.isa.parser import assemble
from repro.isa.program import Program


def tablefree_sbox_byte(value: int) -> int:
    """S-box of one byte via the branchless inversion chain (no table)."""
    a = value & 0xFF
    a2 = gf_mul(a, a)
    a3 = gf_mul(a2, a)
    a6 = gf_mul(a3, a3)
    a12 = gf_mul(a6, a6)
    a15 = gf_mul(a12, a3)
    a30 = gf_mul(a15, a15)
    a60 = gf_mul(a30, a30)
    a120 = gf_mul(a60, a60)
    a240 = gf_mul(a120, a120)
    a252 = gf_mul(a240, a12)
    a254 = gf_mul(a252, a2)
    result = a254
    for shift in (1, 2, 3, 4):
        result ^= ((a254 << shift) | (a254 >> (8 - shift))) & 0xFF
    return result ^ 0x63


def tablefree_sbox(values: np.ndarray) -> np.ndarray:
    """Vectorized table-free S-box (reference oracle for the assembly)."""
    flat = np.asarray(values, dtype=np.uint8).ravel()
    out = np.array([tablefree_sbox_byte(int(v)) for v in flat], dtype=np.uint8)
    return out.reshape(np.asarray(values).shape)


@dataclass(frozen=True)
class TablefreeLayout:
    """Memory map of the table-free S-box program (note: no table)."""

    input: int = 0x24000  # one byte, the plaintext byte x
    output: int = 0x24010  # one byte, S(x ^ k)
    saved_lr: int = 0x24020
    stack_top: int = 0x24800


TABLEFREE_LAYOUT = TablefreeLayout()


def _gf_mul_function(lines: list[str]) -> None:
    """``r0 * r1`` in GF(2^8) -> ``r0``; branchless, eight unrolled steps."""
    lines.append("@ ---- gf_mul: branchless shift-and-add, called not inlined ----")
    lines.append("gf_mul_fn:")
    lines.append("    str r2, [sp, #-4]   @ callee-save spill")
    lines.append("    str r3, [sp, #-8]")
    lines.append("    mov r2, #0")
    for _ in range(8):
        lines += [
            "    and r3, r1, #1",
            "    rsb r3, r3, #0      @ 0x00000000 or 0xffffffff",
            "    and r3, r0, r3",
            "    eor r2, r2, r3",
            "    lsr r1, r1, #1",
            "    lsr r3, r0, #7",
            "    rsb r3, r3, #0",
            "    and r3, r3, #0x1b",
            "    lsl r0, r0, #1",
            "    eor r0, r0, r3",
            "    and r0, r0, #0xff",
        ]
    lines.append("    mov r0, r2")
    lines.append("    ldr r2, [sp, #-4]   @ fill")
    lines.append("    ldr r3, [sp, #-8]")
    lines.append("    bx lr")


def tablefree_sbox_source(key_byte: int, layout: TablefreeLayout = TABLEFREE_LAYOUT) -> str:
    """Compute ``S(x ^ key_byte)`` without any table in memory.

    Register conventions: ``r4`` holds ``a = x ^ k``; the chain keeps
    ``a^2`` in ``r5``, ``a^3`` in ``r6``, ``a^12`` in ``r7``, ``a^15``
    in ``r8`` and ``a^240`` in ``r9``; ``gf_mul_fn`` takes ``r0, r1``
    and returns in ``r0``.
    """
    lines = [
        "tf_sbox:",
        "    ldr r3, =tf_saved_lr",
        "    str lr, [r3]",
        f"    ldr sp, ={layout.stack_top:#x}",
        "    ldr r3, =tf_input",
        "    ldrb r4, [r3]",
        f"    eor r4, r4, #{key_byte & 0xFF:#x}   @ key addition",
        "tf_chain_start:",
        "@ ---- inversion chain: a^254 via 7 squarings + 4 products ----",
        "    mov r0, r4",
        "    mov r1, r4",
        "    bl gf_mul_fn",
        "    mov r5, r0          @ a^2",
        "    mov r1, r4",
        "    bl gf_mul_fn",
        "    mov r6, r0          @ a^3",
        "    mov r1, r6",
        "    bl gf_mul_fn        @ a^6",
        "    mov r1, r0",
        "    bl gf_mul_fn",
        "    mov r7, r0          @ a^12",
        "    mov r1, r6",
        "    bl gf_mul_fn",
        "    mov r8, r0          @ a^15",
        "    mov r1, r8",
        "    bl gf_mul_fn        @ a^30",
        "    mov r1, r0",
        "    bl gf_mul_fn        @ a^60",
        "    mov r1, r0",
        "    bl gf_mul_fn        @ a^120",
        "    mov r1, r0",
        "    bl gf_mul_fn",
        "    mov r9, r0          @ a^240",
        "    mov r1, r7",
        "    bl gf_mul_fn        @ a^252",
        "    mov r1, r5",
        "    bl gf_mul_fn        @ a^254 = inverse",
        "tf_affine_start:",
        "@ ---- affine map: x ^ rol1 ^ rol2 ^ rol3 ^ rol4 ^ 0x63 ----",
        "    mov r1, r0",
    ]
    for shift in (1, 2, 3, 4):
        lines += [
            f"    lsl r2, r0, #{shift}",
            f"    lsr r3, r0, #{8 - shift}",
            "    orr r2, r2, r3",
            "    and r2, r2, #0xff",
            "    eor r1, r1, r2",
        ]
    lines += [
        "    eor r1, r1, #0x63",
        "    ldr r3, =tf_output",
        "    strb r1, [r3]",
        "tf_done:",
        "    ldr r3, =tf_saved_lr",
        "    ldr lr, [r3]",
        "    bx lr",
    ]
    _gf_mul_function(lines)
    lines += [
        f"    .org {layout.input:#x}",
        "tf_input:",
        "    .space 4",
        f"    .org {layout.output:#x}",
        "tf_output:",
        "    .space 4",
        f"    .org {layout.saved_lr:#x}",
        "tf_saved_lr:",
        "    .word 0",
    ]
    return "\n".join(lines)


def tablefree_sbox_program(
    key_byte: int, layout: TablefreeLayout = TABLEFREE_LAYOUT
) -> Program:
    return assemble(tablefree_sbox_source(key_byte, layout))


_SBOX_ARRAY = np.frombuffer(SBOX, dtype=np.uint8)

assert all(tablefree_sbox_byte(v) == SBOX[v] for v in (0x00, 0x01, 0x53, 0xFF))
