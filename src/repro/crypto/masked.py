"""First-order masked S-box lookup — and how the pipeline un-masks it.

The classic table-based countermeasure: with fresh random masks
``m_in``/``m_out`` per execution, build ``T[i ^ m_in] = S[i] ^ m_out``
and look up ``y_m = T[x ^ m_in] = S[x] ^ m_out``.  Every architectural
value is statistically independent of the secret ``S(x)`` — the scheme
is provably first-order secure at the ISA level.

The paper's Section 4.2 (building on Seuschek et al.) shows why this
guarantee does not survive the microarchitecture.  This module provides
the masked routine in two variants differing by a *single commutative
operand swap* in the post-processing:

* ``leaky``: the masked output ``y_m`` and the output mask ``m_out``
  occupy the same operand position of two consecutively single-issued
  instructions, so the op1-bus Hamming distance is
  ``HW(y_m ^ m_out) = HW(S(x))`` — first-order leakage of the unmasked
  S-box output;
* ``hardened``: the second instruction is written with its operands
  swapped, so the mask rides the other bus position and the shares
  never meet before the architectural unmasking.

``run_masked_demo`` attacks both variants with a standard first-order
CPA (model: HW of the unmasked S-box output) and reports the contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.sbox import SBOX
from repro.isa.parser import assemble
from repro.isa.program import Program
from repro.isa.registers import Reg
from repro.power.acquisition import BatchInputs, TraceCampaign
from repro.power.scope import ScopeConfig
from repro.sca.cpa import CpaResult, cpa_attack
from repro.sca.models import hw_sbox_model


@dataclass(frozen=True)
class MaskedLayout:
    """Memory map of the masked S-box routine."""

    masked_input: int = 0x16000  # one byte: x ^ m_in
    masked_table: int = 0x17000  # 256 bytes, built per execution
    sbox: int = 0x18000


MASKED_LAYOUT = MaskedLayout()


def masked_sbox_source(leaky: bool, layout: MaskedLayout = MASKED_LAYOUT) -> str:
    """The masked lookup routine.

    Register contract at entry: ``r8`` = m_in, ``r9`` = m_out (fresh
    random masks), ``r6``/``r7`` = unrelated public values.  The masked
    input byte ``x ^ m_in`` is at ``layout.masked_input``.
    """
    lines = [
        "masked_sb:",
        "    ldr r4, =masked_table",
        "    ldr r5, =sbox_table",
        "    and r8, r8, #0xff",
        "    and r9, r9, #0xff",
        "@ ---- build T[i ^ m_in] = S[i] ^ m_out ----",
        "    mov r10, #0",
        "tloop:",
        "    ldrb r0, [r5, r10]",
        "    eor r0, r0, r9",
        "    eor r1, r10, r8",
        "    strb r0, [r4, r1]",
        "    add r10, r10, #1",
        "    cmp r10, #256",
        "    bne tloop",
        "@ ---- masked lookup ----",
        "    ldr r2, =masked_input",
        "    ldrb r2, [r2]",
        "    ldrb r3, [r4, r2]       @ y_m = S(x) ^ m_out",
        "lookup_done:",
    ]
    if leaky:
        # Both shares in the op1 position of consecutive (non-pairable)
        # reg-reg instructions: bus HD = HW(y_m ^ m_out) = HW(S(x)).
        lines += [
            "@ post-processing (leaky scheduling)",
            "    eor r11, r3, r6",
            "    eor r12, r9, r7",
        ]
    else:
        # The same computation with the second eor's commutative
        # operands swapped: the mask moves to the op2 position.
        lines += [
            "@ post-processing (hardened by an operand swap)",
            "    eor r11, r3, r6",
            "    eor r12, r7, r9",
        ]
    lines += [
        "    bx lr",
        f"    .org {layout.sbox:#x}",
        "sbox_table:",
    ]
    for off in range(0, 256, 16):
        lines.append("    .byte " + ", ".join(str(b) for b in SBOX[off : off + 16]))
    lines += [
        f"    .org {layout.masked_table:#x}",
        "masked_table:",
        "    .space 256",
        f"    .org {layout.masked_input:#x}",
        "masked_input:",
        "    .space 4",
    ]
    return "\n".join(lines)


def masked_sbox_program(leaky: bool, layout: MaskedLayout = MASKED_LAYOUT) -> Program:
    return assemble(masked_sbox_source(leaky, layout))


def masked_inputs(
    n_traces: int, key_byte: int, seed: int = 0x3A5E, layout: MaskedLayout = MASKED_LAYOUT
) -> tuple[BatchInputs, np.ndarray]:
    """Random plaintext bytes and fresh masks; returns (inputs, plaintexts)."""
    rng = np.random.default_rng(seed)
    plaintexts = rng.integers(0, 256, size=n_traces, dtype=np.uint16).astype(np.uint8)
    m_in = rng.integers(0, 256, size=n_traces, dtype=np.uint16).astype(np.uint32)
    m_out = rng.integers(0, 256, size=n_traces, dtype=np.uint16).astype(np.uint32)
    publics = {
        reg: rng.integers(0, 2**32, size=n_traces, dtype=np.uint64).astype(np.uint32)
        for reg in (Reg.R6, Reg.R7)
    }
    masked_x = (plaintexts ^ np.uint8(key_byte)) ^ m_in.astype(np.uint8)
    inputs = BatchInputs(
        n_traces=n_traces,
        regs={Reg.R8: m_in, Reg.R9: m_out, **publics},
        mem_bytes={layout.masked_input: masked_x.reshape(-1, 1)},
    )
    return inputs, plaintexts


@dataclass
class MaskedDemoResult:
    """First-order CPA outcomes against both masked variants."""

    leaky: CpaResult
    hardened: CpaResult
    key_byte: int
    n_traces: int

    @property
    def leaky_broken(self) -> bool:
        return self.leaky.rank_of(self.key_byte) == 0

    @property
    def hardened_survives(self) -> bool:
        return self.hardened.rank_of(self.key_byte) > 0

    def render(self) -> str:
        return (
            "First-order CPA against the masked S-box (model: HW(S(x))):\n"
            f"  leaky scheduling   : true key rank {self.leaky.rank_of(self.key_byte)}, "
            f"peak |r| {self.leaky.best_corr:.3f} "
            f"-> {'BROKEN by the pipeline' if self.leaky_broken else 'survived'}\n"
            f"  operand-swapped    : true key rank {self.hardened.rank_of(self.key_byte)}, "
            f"peak |r| {self.hardened.best_corr:.3f} "
            f"-> {'survives first-order CPA' if self.hardened_survives else 'broken'}"
        )


def run_masked_demo(
    n_traces: int = 2000, key_byte: int = 0x4B, seed: int = 0x3A5E
) -> MaskedDemoResult:
    """Attack both variants with the unmasked-output HW model."""

    def attack(leaky: bool, campaign_seed: int) -> CpaResult:
        program = masked_sbox_program(leaky)
        inputs, plaintexts = masked_inputs(n_traces, key_byte, seed=seed)
        lookup_static = program.instruction_at(program.label_address("lookup_done")).index
        campaign = TraceCampaign(
            program,
            scope=ScopeConfig(noise_sigma=8.0, kernel=(1.0,)),
            entry="masked_sb",
            seed=campaign_seed,
        )
        # Window the acquisition around the lookup + post-processing so
        # the table-construction loop (mask-independent) stays out.
        path, schedule, _leakage = campaign.compile_with(inputs)
        lookup_dyn = path.index(lookup_static)
        window = (
            schedule.issue_cycle[max(0, lookup_dyn - 4)],
            schedule.issue_cycle[-1] + 6,
        )
        campaign.window_cycles = window
        trace_set = campaign.acquire(inputs)
        pts = plaintexts.reshape(-1, 1).repeat(16, axis=1)  # adapt to the model API
        return cpa_attack(
            trace_set.traces, lambda g: hw_sbox_model(pts, 0, g)
        )

    leaky = attack(True, seed ^ 0x1)
    hardened = attack(False, seed ^ 0x2)
    return MaskedDemoResult(
        leaky=leaky, hardened=hardened, key_byte=key_byte, n_traces=n_traces
    )
