"""AES S-box tables and GF(2^8) primitives.

The S-box is generated from first principles (multiplicative inverse in
GF(2^8) modulo the Rijndael polynomial, followed by the affine map) and
checked against its well-known corner values, rather than pasted as an
opaque table.
"""

from __future__ import annotations

_RIJNDAEL_POLY = 0x11B


def xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) mod the Rijndael polynomial."""
    value <<= 1
    if value & 0x100:
        value ^= _RIJNDAEL_POLY
    return value & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Full GF(2^8) product (shift-and-add / Russian peasant)."""
    result = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            result ^= a
        a = xtime(a)
        b >>= 1
    return result & 0xFF


def _gf_inverse(a: int) -> int:
    if a == 0:
        return 0
    # a^(2^8 - 2) = a^254 is the inverse in GF(2^8).
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = gf_mul(result, power)
        power = gf_mul(power, power)
        exponent >>= 1
    return result


def _affine(a: int) -> int:
    result = 0x63
    for shift in (0, 1, 2, 3, 4):
        result ^= ((a << shift) | (a >> (8 - shift))) & 0xFF
    return result & 0xFF


def _build_sbox() -> tuple[bytes, bytes]:
    forward = bytearray(256)
    inverse = bytearray(256)
    for value in range(256):
        s = _affine(_gf_inverse(value))
        forward[value] = s
        inverse[s] = value
    return bytes(forward), bytes(inverse)


SBOX, INV_SBOX = _build_sbox()

assert SBOX[0x00] == 0x63 and SBOX[0x01] == 0x7C and SBOX[0x53] == 0xED
assert INV_SBOX[SBOX[0xAB]] == 0xAB

#: Round constants for AES-128 key expansion.
RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)
