"""AES-128: a golden Python model and the attacked assembly implementation.

``repro.crypto.aes`` is a FIPS-197 reference implementation used as the
functional oracle; ``repro.crypto.aes_asm`` emits the byte-oriented ARM
assembly whose leakage Section 5 of the paper analyzes (table S-box via
``ldrb``/``strb``, ShiftRows composed with byte shifts, MixColumns through
a non-inlined shift-reduce GF(2^8) doubling helper with stack spills).
"""

from repro.crypto.aes import (
    aes128_encrypt_block,
    aes128_round_keys,
    add_round_key,
    mix_columns,
    shift_rows,
    sub_bytes,
    sub_bytes_out_round1,
)
from repro.crypto.sbox import INV_SBOX, SBOX, xtime

__all__ = [
    "INV_SBOX",
    "SBOX",
    "add_round_key",
    "aes128_encrypt_block",
    "aes128_round_keys",
    "mix_columns",
    "shift_rows",
    "sub_bytes",
    "sub_bytes_out_round1",
    "xtime",
]
