"""PRESENT-80 (Bogdanov et al., CHES 2007): reference cipher + attacked round.

The reference implementation follows the paper's pseudocode directly
(31 rounds of addRoundKey / sBoxLayer / pLayer plus a final key
addition) and is pinned to the four test vectors from the paper's
appendix.  The assembly workload is one round in the same code shape as
the AES implementation the paper attacks: per-nibble table lookups for
the S-box layer (two ``ldrb`` lookups per state byte) and a fully
unrolled bit-gather for the pLayer, so control flow is input-independent
as the batch executor requires.

The 64-bit state lives in memory little-endian (byte ``i`` holds state
bits ``8i+7 .. 8i``); the attacked intermediate is the S-box output of
the lowest nibble, ``S[pt_nibble ^ key_nibble]`` — a 16-guess CPA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.parser import assemble
from repro.isa.program import Program

#: The PRESENT S-box (a single 4-bit table for the whole cipher).
PRESENT_SBOX = (0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2)

_PRESENT_SBOX_ARRAY = np.array(PRESENT_SBOX, dtype=np.uint8)

_KEY_MASK_80 = (1 << 80) - 1


def player_position(bit: int) -> int:
    """Destination of state bit ``bit`` under the pLayer (bit 0 = LSB)."""
    if not 0 <= bit < 64:
        raise ValueError("PRESENT state bits are 0..63")
    return 63 if bit == 63 else (16 * bit) % 63


def player_permute(state: int) -> int:
    """Apply the pLayer bit permutation to a 64-bit state."""
    out = 0
    for bit in range(64):
        out |= ((state >> bit) & 1) << player_position(bit)
    return out


def sbox_layer(state: int) -> int:
    """Apply the S-box to each of the sixteen state nibbles."""
    out = 0
    for nibble in range(16):
        out |= PRESENT_SBOX[(state >> (4 * nibble)) & 0xF] << (4 * nibble)
    return out


def present80_round_keys(key: bytes) -> list[int]:
    """The 32 64-bit round keys of the PRESENT-80 key schedule."""
    if len(key) != 10:
        raise ValueError("PRESENT-80 key must be 10 bytes")
    register = int.from_bytes(key, "big")
    round_keys = []
    for counter in range(1, 33):
        round_keys.append(register >> 16)
        register = ((register << 61) | (register >> 19)) & _KEY_MASK_80
        top = (register >> 76) & 0xF
        register = (register & ~(0xF << 76)) | (PRESENT_SBOX[top] << 76)
        register ^= counter << 15
    return round_keys


def present80_encrypt(plaintext: bytes, key: bytes) -> bytes:
    """Encrypt one 8-byte block under a 10-byte key."""
    if len(plaintext) != 8:
        raise ValueError("PRESENT block must be 8 bytes")
    round_keys = present80_round_keys(key)
    state = int.from_bytes(plaintext, "big")
    for round_index in range(31):
        state = player_permute(sbox_layer(state ^ round_keys[round_index]))
    return (state ^ round_keys[31]).to_bytes(8, "big")


def present_round(state: int, round_key: int) -> int:
    """One addRoundKey + sBoxLayer + pLayer step on 64-bit integers."""
    return player_permute(sbox_layer(state ^ round_key))


@dataclass(frozen=True)
class PresentLayout:
    """Memory map of the one-round PRESENT program."""

    state: int = 0x21000  # 8 bytes, little-endian state, input and output
    round_key: int = 0x21010  # 8 bytes, round key 1 (baked from the cipher key)
    psbox: int = 0x21100  # 16-byte S-box table


PRESENT_LAYOUT = PresentLayout()


def present_round_source(key: bytes, layout: PresentLayout = PRESENT_LAYOUT) -> str:
    """One PRESENT round, table lookups per nibble, unrolled pLayer.

    Register conventions: ``r4`` state base, ``r5`` round-key base,
    ``r6`` S-box base; ``r0``/``r1`` scratch; the pLayer gathers the
    state words from ``r0``/``r1`` into ``r2``/``r3`` via ``r7``.
    """
    round_key = present80_round_keys(key)[0]
    lines = [
        "present_round:",
        "    ldr r4, =pstate",
        "    ldr r5, =pround_key",
        "    ldr r6, =psbox_table",
        "@ ---- addRoundKey ----",
    ]
    for i in range(8):
        lines += [
            f"    ldrb r0, [r4, #{i}]",
            f"    ldrb r1, [r5, #{i}]",
            "    eor r0, r0, r1",
            f"    strb r0, [r4, #{i}]",
        ]
    lines.append("@ ---- sBoxLayer: two nibble lookups per state byte ----")
    lines.append("psbox_start:")
    for i in range(8):
        lines += [
            f"    ldrb r0, [r4, #{i}]",
            "    and r1, r0, #0x0f",
            "    ldrb r1, [r6, r1]",
            "    lsr r0, r0, #4",
            "    ldrb r0, [r6, r0]",
            "    lsl r0, r0, #4",
            "    orr r0, r0, r1",
            f"    strb r0, [r4, #{i}]",
        ]
    lines.append("@ ---- pLayer: gather each state bit to 16*i mod 63 ----")
    lines.append("player_start:")
    lines += [
        "    ldr r0, [r4]",
        "    ldr r1, [r4, #4]",
        "    mov r2, #0",
        "    mov r3, #0",
    ]
    for src in range(64):
        dst = player_position(src)
        sreg = "r0" if src < 32 else "r1"
        dreg = "r2" if dst < 32 else "r3"
        sbit, dbit = src % 32, dst % 32
        if sbit:
            lines.append(f"    lsr r7, {sreg}, #{sbit}")
            lines.append("    and r7, r7, #1")
        else:
            lines.append(f"    and r7, {sreg}, #1")
        if dbit:
            lines.append(f"    lsl r7, r7, #{dbit}")
        lines.append(f"    orr {dreg}, {dreg}, r7")
    lines += [
        "    str r2, [r4]",
        "    str r3, [r4, #4]",
        "present_round_end:",
        "    bx lr",
        f"    .org {layout.round_key:#x}",
        "pround_key:",
        "    .byte " + ", ".join(str(b) for b in round_key.to_bytes(8, "little")),
        f"    .org {layout.psbox:#x}",
        "psbox_table:",
        "    .byte " + ", ".join(str(b) for b in PRESENT_SBOX),
        f"    .org {layout.state:#x}",
        "pstate:",
        "    .space 8",
    ]
    return "\n".join(lines)


def present_round_program(key: bytes, layout: PresentLayout = PRESENT_LAYOUT) -> Program:
    return assemble(present_round_source(key, layout))


def state_to_bytes(state: int) -> bytes:
    """The in-memory (little-endian) image of a 64-bit state."""
    return state.to_bytes(8, "little")


def state_from_bytes(data: bytes) -> int:
    return int.from_bytes(data, "little")


def present_sbox_model(plaintexts: np.ndarray, guess: int) -> np.ndarray:
    """Hamming weight of ``S[pt_nibble ^ guess]`` for the low nibble.

    ``plaintexts`` is ``uint8[n_traces]`` holding state byte 0; the
    model targets its low nibble against a 4-bit key-nibble guess.
    """
    nibbles = np.asarray(plaintexts, dtype=np.uint8) & np.uint8(0xF)
    outputs = _PRESENT_SBOX_ARRAY[nibbles ^ np.uint8(guess & 0xF)]
    return np.unpackbits(outputs[:, None], axis=1).sum(axis=1).astype(np.float64)
