"""Second-order masked AES round (Schramm-Paar style table recomputation).

Each state byte is split into three shares ``x = x' ^ m1 ^ m2`` with two
fresh input masks per execution.  The S-box layer goes through a
recomputed table ``T'[i ^ m1 ^ m2] = S[i] ^ n1 ^ n2`` built sequentially
before the round, so a lookup of the masked byte directly yields the
output masked under the fresh pair ``(n1, n2)``.  The two masks of a
pair are always combined *with* the table index or entry between them —
no architectural value ever holds ``m1 ^ m2`` or ``n1 ^ n2`` alone,
which is what makes the scheme second-order secure at the ISA level.

The linear layers run on the masked share only: AddRoundKey is linear in
the share, ShiftRows permutes bytes (the mask is uniform across bytes,
so it is preserved), and MixColumns preserves a uniform byte mask ``n``
because its row sums to 1 in GF(2^8) (``2 ^ 3 ^ 1 ^ 1 = 1``).  The
ShiftRows / MixColumns / xtime code is literally the attacked AES
implementation's, reused from :mod:`repro.crypto.aes_asm`, so the
masked workload leaks through the same microarchitectural paths.

The caller learns the output masks from its own inputs: the round
output satisfies ``out ^ n1 ^ n2 == mix_columns(shift_rows(sub_bytes(
add_round_key(pt, key))))`` — the recombination oracle the known-answer
tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.aes import (
    add_round_key,
    mix_columns,
    shift_rows,
    sub_bytes,
)
from repro.crypto.aes_asm import (
    _add_round_key,
    _mix_columns,
    _shift_rows,
    _sub_bytes,
    _xtime_function,
)
from repro.crypto.sbox import SBOX
from repro.isa.parser import assemble
from repro.isa.program import Program
from repro.isa.registers import Reg
from repro.power.acquisition import BatchInputs


@dataclass(frozen=True)
class MaskedRoundLayout:
    """Memory map of the masked round program."""

    state: int = 0x2A000  # 16 bytes, masked state x' (input and output)
    round_key: int = 0x2A020  # 16 bytes, round key 0 (baked)
    sbox: int = 0x2A100  # 256 bytes, the plain S-box
    table: int = 0x2A200  # 256 bytes, T' rebuilt per execution
    saved_lr: int = 0x2A300
    row_buffer: int = 0x2A310
    zero_scratch: int = 0x2A320
    stack_top: int = 0x2B000


MASKED_ROUND_LAYOUT = MaskedRoundLayout()


def masked_round_source(key: bytes, layout: MaskedRoundLayout = MASKED_ROUND_LAYOUT) -> str:
    """ARK + SB + SHR + MC on three shares, masks in ``r8..r11`` at entry.

    Register contract at entry: ``r8`` = m1, ``r9`` = m2 (input masks),
    ``r10`` = n1, ``r11`` = n2 (output masks); the masked state
    ``pt ^ m1 ^ m2`` is at ``layout.state``.  After the table build the
    masks are dead and the registers are recycled by MixColumns.
    """
    if len(key) != 16:
        raise ValueError("AES-128 key must be 16 bytes")
    lines = [
        "masked_round:",
        "    ldr r3, =msaved_lr",
        "    str lr, [r3]",
        f"    ldr sp, ={layout.stack_top:#x}",
        "    ldr r4, =state",
        "    ldr r5, =mround_key",
        "    ldr r6, =msbox_table",
        "    ldr r7, =mtable",
        "    and r8, r8, #0xff",
        "    and r9, r9, #0xff",
        "    and r10, r10, #0xff",
        "    and r11, r11, #0xff",
        "@ ---- build T'[i ^ m1 ^ m2] = S[i] ^ n1 ^ n2 (shares never meet) ----",
        "mtable_start:",
        "    mov r12, #0",
        "mtloop:",
        "    ldrb r0, [r6, r12]",
        "    eor r0, r0, r10",
        "    eor r0, r0, r11",
        "    eor r1, r12, r8",
        "    eor r1, r1, r9",
        "    strb r0, [r7, r1]",
        "    add r12, r12, #1",
        "    cmp r12, #256",
        "    bne mtloop",
        "mround_start:",
    ]
    _add_round_key(lines)  # linear: applies to the masked share
    lines.append("    mov r6, r7          @ SubBytes reads the masked table")
    lines.append("msb_start:")
    _sub_bytes(lines)
    lines.append("mshr_start:")
    _shift_rows(lines)
    lines.append("mmc_start:")
    _mix_columns(lines)
    lines += [
        "mround_end:",
        "    ldr r3, =msaved_lr",
        "    ldr lr, [r3]",
        "    bx lr",
    ]
    _xtime_function(lines)
    lines += [
        f"    .org {layout.round_key:#x}",
        "mround_key:",
        "    .byte " + ", ".join(str(b) for b in key),
        f"    .org {layout.sbox:#x}",
        "msbox_table:",
    ]
    for off in range(0, 256, 16):
        lines.append("    .byte " + ", ".join(str(b) for b in SBOX[off : off + 16]))
    lines += [
        f"    .org {layout.table:#x}",
        "mtable:",
        "    .space 256",
        f"    .org {layout.saved_lr:#x}",
        "msaved_lr:",
        "    .word 0",
        f"    .org {layout.row_buffer:#x}",
        "row_buffer:",
        "    .word 0",
        f"    .org {layout.zero_scratch:#x}",
        "zero_scratch:",
        "    .word 0",
        f"    .org {layout.state:#x}",
        "state:",
        "    .space 16",
    ]
    return "\n".join(lines)


def masked_round_program(
    key: bytes, layout: MaskedRoundLayout = MASKED_ROUND_LAYOUT
) -> Program:
    return assemble(masked_round_source(key, layout))


def masked_round_reference(
    plaintext: bytes, key: bytes, m1: int, m2: int, n1: int, n2: int
) -> bytes:
    """What the program leaves in the state buffer: ``round1 ^ n1 ^ n2``."""
    out = mix_columns(shift_rows(sub_bytes(add_round_key(plaintext, key))))
    mask = (n1 ^ n2) & 0xFF
    return bytes(b ^ mask for b in out)


def unmasked_round1(plaintext: bytes, key: bytes) -> bytes:
    """The unmasked oracle for the recombination known-answer test."""
    return mix_columns(shift_rows(sub_bytes(add_round_key(plaintext, key))))


def masked_round_inputs(
    n_traces: int,
    key: bytes,
    seed: int = 0x2B1D,
    layout: MaskedRoundLayout = MASKED_ROUND_LAYOUT,
) -> tuple[BatchInputs, np.ndarray]:
    """Random plaintexts plus four fresh masks; returns (inputs, plaintexts)."""
    rng = np.random.default_rng(seed)
    plaintexts = rng.integers(0, 256, size=(n_traces, 16), dtype=np.uint16).astype(np.uint8)
    masks = {
        reg: rng.integers(0, 256, size=n_traces, dtype=np.uint16).astype(np.uint32)
        for reg in (Reg.R8, Reg.R9, Reg.R10, Reg.R11)
    }
    share_mask = (masks[Reg.R8] ^ masks[Reg.R9]).astype(np.uint8)
    masked_state = plaintexts ^ share_mask[:, None]
    inputs = BatchInputs(
        n_traces=n_traces,
        regs=masks,
        mem_bytes={layout.state: masked_state},
    )
    return inputs, plaintexts
