"""Reference AES-128 (FIPS-197), the functional oracle for the assembly.

The state is kept as a 16-byte array in the standard column-major layout
(byte ``i`` sits at row ``i % 4``, column ``i // 4``), matching the
memory layout of the assembly implementation.  Vectorized helpers
compute attack-model intermediates (first-round SubBytes outputs) for
whole trace batches at once.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.sbox import RCON, SBOX, xtime

_SBOX_ARRAY = np.frombuffer(SBOX, dtype=np.uint8)

#: byte index permutation implementing ShiftRows on the column-major state
SHIFT_ROWS_PERM = tuple((i + 4 * (i % 4)) % 16 for i in range(16))


def aes128_round_keys(key: bytes) -> list[bytes]:
    """Expand a 16-byte key into the 11 round keys."""
    if len(key) != 16:
        raise ValueError("AES-128 key must be 16 bytes")
    words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = [SBOX[b] for b in temp]  # SubWord
            temp[0] ^= RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    round_keys = []
    for r in range(11):
        round_keys.append(bytes(b for w in words[4 * r : 4 * r + 4] for b in w))
    return round_keys


def add_round_key(state: bytes, round_key: bytes) -> bytes:
    return bytes(s ^ k for s, k in zip(state, round_key))


def sub_bytes(state: bytes) -> bytes:
    return bytes(SBOX[b] for b in state)


def shift_rows(state: bytes) -> bytes:
    return bytes(state[SHIFT_ROWS_PERM[i]] for i in range(16))


def mix_single_column(column: bytes) -> bytes:
    a0, a1, a2, a3 = column
    total = a0 ^ a1 ^ a2 ^ a3
    return bytes(
        (
            a0 ^ total ^ xtime(a0 ^ a1),
            a1 ^ total ^ xtime(a1 ^ a2),
            a2 ^ total ^ xtime(a2 ^ a3),
            a3 ^ total ^ xtime(a3 ^ a0),
        )
    )


def mix_columns(state: bytes) -> bytes:
    out = bytearray(16)
    for col in range(4):
        out[4 * col : 4 * col + 4] = mix_single_column(state[4 * col : 4 * col + 4])
    return bytes(out)


def aes128_encrypt_block(plaintext: bytes, key: bytes) -> bytes:
    """Encrypt one 16-byte block."""
    if len(plaintext) != 16:
        raise ValueError("AES block must be 16 bytes")
    round_keys = aes128_round_keys(key)
    state = add_round_key(plaintext, round_keys[0])
    for r in range(1, 10):
        state = mix_columns(shift_rows(sub_bytes(state)))
        state = add_round_key(state, round_keys[r])
    state = shift_rows(sub_bytes(state))
    return add_round_key(state, round_keys[10])


def round1_states(plaintext: bytes, key: bytes) -> dict[str, bytes]:
    """Intermediates of round 1, keyed by primitive name."""
    round_keys = aes128_round_keys(key)
    ark = add_round_key(plaintext, round_keys[0])
    sb = sub_bytes(ark)
    shr = shift_rows(sb)
    mc = mix_columns(shr)
    return {"ark": ark, "sb": sb, "shr": shr, "mc": mc}


# ----------------------------------------------------------------------
# Vectorized attack-model helpers
# ----------------------------------------------------------------------


def sub_bytes_out_round1(
    plaintext_bytes: np.ndarray, key_byte_guess: int, byte_index: int | None = None
) -> np.ndarray:
    """First-round SubBytes output for a key-byte guess.

    ``plaintext_bytes`` is ``uint8[n_traces]`` (one state byte position
    across a campaign) or ``uint8[n_traces, 16]`` with ``byte_index``
    selecting the position.  Returns ``uint8[n_traces]``.
    """
    pt = np.asarray(plaintext_bytes, dtype=np.uint8)
    if pt.ndim == 2:
        if byte_index is None:
            raise ValueError("byte_index required for a [n,16] plaintext array")
        pt = pt[:, byte_index]
    return _SBOX_ARRAY[pt ^ np.uint8(key_byte_guess)]
