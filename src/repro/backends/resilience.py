"""The resilience layer: retries, watchdogs, quarantine, fault reports.

PR 6's backends fail *cleanly* — a worker exception surfaces with its
remote traceback and nothing leaks — but not *gracefully*: one flaky
chunk, one hung worker or one corrupted result still kills the whole
campaign.  This module supplies the policy objects and bookkeeping the
backends and the streaming engine use to recover instead:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *deterministic seeded jitter* (a retry schedule is a pure function of
  ``(seed, chunk index, attempt)``, so chaos tests replay exactly), plus
  retryable-exception classification: transient faults
  (:class:`WatchdogTimeout`, :class:`ChunkCorruption`,
  :class:`TransientChunkError`, ``OSError`` and friends) are retried,
  deterministic programming errors fail fast on the first attempt.
* :class:`WatchdogTimeout` — the soft per-chunk deadline violation a
  pool backend raises when a worker stops answering (hung *or*
  SIGKILLed: either way the chunk's result never arrives).  The backend
  responds by killing and replacing its worker pool and re-dispatching
  the chunk; the campaign's bytes are unaffected because every chunk is
  a pure function of its trace range.
* :class:`ChunkCorruption` — a chunk result that fails the engine's
  shape/dtype/finiteness validation on rewrap.
* :class:`BackendBroken` — a backend that exhausted its watchdog
  retries.  Under the ``auto`` policy the engine *quarantines* it
  (process-wide, see :func:`quarantine_backend`) and falls down the
  degradation ladder ``pool -> fork -> spawn -> serial``, loudly via
  :class:`~repro.backends.base.BackendDegradationWarning`.
* :class:`FaultReport` — the structured record of everything the
  resilience layer did (attempts, retries, timeouts, degradations,
  checkpoint events); the :class:`~repro.api.session.Session` attaches
  it to the result envelope as ``fault_report``.

Nothing here costs anything when unused: with no retry policy, no
timeout and no checkpoint the backends run their historical dispatch
paths untouched.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


class WatchdogTimeout(RuntimeError):
    """A chunk's result did not arrive within its soft deadline.

    Covers both hung workers and crashed (e.g. SIGKILLed) ones — a dead
    worker's task result simply never arrives, which is indistinguishable
    from a hang at the parent.  Always classified retryable.
    """


class ChunkCorruption(RuntimeError):
    """A chunk result failed shape/dtype/finiteness validation on rewrap."""


class TransientChunkError(RuntimeError):
    """A distinguished transient failure (used by the chaos injectors)."""


class BackendBroken(RuntimeError):
    """A backend exhausted its watchdog retries and is considered down.

    Raised *instead of* the final :class:`WatchdogTimeout` so the engine
    can tell 'this backend is unhealthy' (ladder down under ``auto``)
    from 'this task is deterministically broken' (fail the campaign).
    """

    def __init__(self, backend: str, message: str):
        super().__init__(message)
        self.backend = backend


#: Exception types retried by default.  Deterministic errors (wrong
#: shapes, assertion failures, the injectors' always-fail variants) are
#: deliberately absent: retrying them wastes the attempt budget and
#: hides real bugs.
RETRYABLE_EXCEPTIONS: tuple[type[BaseException], ...] = (
    WatchdogTimeout,
    ChunkCorruption,
    TransientChunkError,
    ConnectionError,
    BrokenPipeError,
    EOFError,
    OSError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` counts *total* attempts (1 = no retries).  The
    delay before attempt ``k+1`` is
    ``min(backoff_max, backoff_base * backoff_factor**(k-1))`` scaled by
    a jitter factor drawn from ``random.Random((seed, index, k))`` — a
    pure function of the policy seed, the chunk index and the attempt
    number, so two runs of the same campaign back off identically.
    """

    max_attempts: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    seed: int = 0x7E51
    retry_on: tuple[type[BaseException], ...] = RETRYABLE_EXCEPTIONS

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter}")

    @classmethod
    def from_retries(cls, retries: int, **overrides: Any) -> "RetryPolicy":
        """The policy for "retry each chunk up to ``retries`` times"."""
        return cls(max_attempts=int(retries) + 1, **overrides)

    @property
    def retries(self) -> int:
        return self.max_attempts - 1

    def retryable(self, error: BaseException) -> bool:
        """Is ``error`` worth another attempt?

        Classified by type against ``retry_on``, with an escape hatch:
        any exception carrying a truthy ``retryable`` attribute is
        treated as transient regardless of its type.
        """
        if getattr(error, "retryable", False):
            return True
        return isinstance(error, self.retry_on)

    def delay(self, index: int, attempt: int) -> float:
        """Seconds to wait after failed attempt ``attempt`` of chunk ``index``."""
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        if self.jitter == 0.0 or base == 0.0:
            return base
        # Tuple-of-int hashes are stable across runs (PYTHONHASHSEED
        # only perturbs str/bytes), so this jitter replays exactly.
        rng = random.Random(hash((self.seed, int(index), int(attempt))))
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class FaultReport:
    """Everything the resilience layer did during one run.

    Attached to the result envelope as the structured ``fault_report``
    payload; an untouched report (``has_events()`` false) is omitted so
    happy-path envelopes are byte-identical to pre-resilience ones.
    """

    #: total chunk attempts dispatched (including first attempts)
    attempts: int = 0
    #: one record per retry: chunk, attempt number, error, backend, delay
    retries: list[dict] = field(default_factory=list)
    #: watchdog deadline violations observed
    timeouts: int = 0
    #: chunk results rejected by rewrap validation
    corruptions: int = 0
    #: degradation-ladder messages, in the order they fired
    degradations: list[str] = field(default_factory=list)
    #: backends quarantined during the run
    quarantined: list[str] = field(default_factory=list)
    #: checkpoint lifecycle events (saved/resumed/completed)
    checkpoint: list[dict] = field(default_factory=list)

    def record_attempt(self, n: int = 1) -> None:
        self.attempts += n

    def record_retry(
        self, *, chunk: int, attempt: int, error: BaseException, backend: str, delay: float
    ) -> None:
        self.retries.append(
            {
                "chunk": int(chunk),
                "attempt": int(attempt),
                "error": f"{type(error).__name__}: {error}",
                "backend": backend,
                "delay_s": round(float(delay), 4),
            }
        )

    def record_degradation(self, message: str) -> None:
        if message not in self.degradations:
            self.degradations.append(message)

    def record_quarantine(self, backend: str) -> None:
        if backend not in self.quarantined:
            self.quarantined.append(backend)

    def record_checkpoint(self, event: str, **info: Any) -> None:
        self.checkpoint.append({"event": event, **info})

    def has_events(self) -> bool:
        """Did anything beyond plain first-attempt dispatch happen?"""
        return bool(
            self.retries
            or self.timeouts
            or self.corruptions
            or self.degradations
            or self.quarantined
            or self.checkpoint
        )

    def to_json(self) -> dict:
        record: dict[str, Any] = {
            "attempts": self.attempts,
            "retries": list(self.retries),
            "timeouts": self.timeouts,
            "corruptions": self.corruptions,
        }
        if self.degradations:
            record["degradations"] = list(self.degradations)
        if self.quarantined:
            record["quarantined"] = list(self.quarantined)
        if self.checkpoint:
            record["checkpoint"] = list(self.checkpoint)
        return record


# -- ambient report collection ------------------------------------------

_ACTIVE_REPORT: ContextVar[FaultReport | None] = ContextVar(
    "repro_fault_report", default=None
)


@contextmanager
def collecting_faults() -> Iterator[FaultReport]:
    """Collect every fault event of the enclosed run into one report.

    The :class:`~repro.api.session.Session` wraps each scenario run in
    this context; the engine's streams pick the ambient report up via
    :func:`active_report` so drivers need no report plumbing of their
    own.
    """
    report = FaultReport()
    token = _ACTIVE_REPORT.set(report)
    try:
        yield report
    finally:
        _ACTIVE_REPORT.reset(token)


def active_report() -> FaultReport | None:
    """The ambient report of an enclosing :func:`collecting_faults`."""
    return _ACTIVE_REPORT.get()


@dataclass
class ResilienceContext:
    """The per-stream resilience state a backend dispatches against.

    Built by the engine when any resilience knob is set and attached to
    the :class:`~repro.backends.base.BackendContext`; ``None`` there
    means "run the historical dispatch path".
    """

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: soft per-chunk deadline in seconds (None: no watchdog)
    chunk_timeout: float | None = None
    report: FaultReport = field(default_factory=FaultReport)
    #: ``validator(task, payload)`` raises :class:`ChunkCorruption`
    validator: Callable[[Any, Any], None] | None = None
    #: injectable for tests (replaces real backoff sleeps)
    sleep: Callable[[float], None] = time.sleep

    def record_failure(self, error: BaseException) -> None:
        if isinstance(error, WatchdogTimeout):
            self.report.timeouts += 1
        if isinstance(error, ChunkCorruption):
            self.report.corruptions += 1

    def backoff(
        self, *, task_index: int, attempt: int, error: BaseException, backend: str
    ) -> None:
        """Record the retry and sleep its deterministic backoff delay."""
        delay = self.policy.delay(task_index, attempt)
        self.report.record_retry(
            chunk=task_index, attempt=attempt, error=error, backend=backend, delay=delay
        )
        if delay > 0:
            self.sleep(delay)


def run_attempts(
    resilience: ResilienceContext,
    task: Any,
    attempt_fn: Callable[[int], Any],
    backend_name: str,
) -> Any:
    """Run ``attempt_fn`` under the retry policy; the serial attempt loop.

    ``attempt_fn(attempt)`` produces the chunk payload (1-based attempt
    numbers); the payload is validated before it counts as success.
    Non-retryable errors and exhausted budgets re-raise the original
    exception.
    """
    policy = resilience.policy
    attempt = 1
    while True:
        resilience.report.record_attempt()
        try:
            payload = attempt_fn(attempt)
            if resilience.validator is not None:
                resilience.validator(task, payload)
            return payload
        except Exception as error:
            resilience.record_failure(error)
            if attempt >= policy.max_attempts or not policy.retryable(error):
                raise
            resilience.backoff(
                task_index=getattr(task, "index", 0),
                attempt=attempt,
                error=error,
                backend=backend_name,
            )
            attempt += 1


# -- backend quarantine + degradation ladder ----------------------------

#: The fall-down order under ``auto`` when a backend is quarantined.
DEGRADATION_LADDER = ("pool", "fork", "spawn", "serial")

#: Process-wide quarantine registry: backend name -> reason.  A backend
#: that exhausted its watchdog retries lands here and ``auto``
#: resolution skips it for the rest of the process (tests and services
#: lift it with :func:`clear_quarantine`).
_QUARANTINED: dict[str, str] = {}


def quarantine_backend(name: str, reason: str) -> None:
    _QUARANTINED[name] = reason


def is_quarantined(name: str) -> bool:
    return name in _QUARANTINED


def quarantine_info() -> dict[str, str]:
    return dict(_QUARANTINED)


def clear_quarantine() -> None:
    _QUARANTINED.clear()


def next_rung(current: str) -> str:
    """The next usable backend below ``current`` on the ladder.

    Skips quarantined and unavailable rungs; ``serial`` is the floor and
    is never quarantined (there is nothing left to fall to).
    """
    from repro.backends.pools import fork_available

    if current in DEGRADATION_LADDER:
        candidates = DEGRADATION_LADDER[DEGRADATION_LADDER.index(current) + 1 :]
    else:
        candidates = DEGRADATION_LADDER[1:]
    for name in candidates:
        if name == "serial":
            return name
        if is_quarantined(name):
            continue
        if name == "fork" and not fork_available():
            continue
        if name == "pool":
            continue  # pool needs an owning scope; never an auto rung
        return name
    return "serial"
