"""Optional Numba-JIT'd packed tape replay, behind a soft import.

When `numba <https://numba.pydata.org>`_ is importable,
:class:`NumbaTapeBackend` installs a JIT'd evaluator for the packed
leakage plan — the popcount pools and the level-grouped scatter of
:class:`repro.power.synth._PackedPlan` fused into one nopython kernel —
for the float64 path (the float32 scratch path already streams through
preallocated buffers and is left alone).  The kernel performs exactly
the reference evaluator's operations in exactly its order (integer
popcounts; per level, ``power[sample] (=|+=) weight * pool`` ; one
final gain multiply), so its output is bit-identical to the NumPy
reference — a tested invariant, not an aspiration
(``tests/backends/test_numba.py``, skipped where numba is absent).

Without numba everything in this module still imports: the backend
raises :class:`~repro.backends.base.BackendUnavailable` at construction
and :func:`numba_available` reports ``False`` (the policy resolver and
``describe()`` metadata use it); nothing else in the codebase changes
behavior.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import BackendUnavailable, SerialBackend

try:  # soft dependency: everything degrades gracefully without it
    import numba
except ImportError:  # pragma: no cover - exercised where numba is absent
    numba = None


def numba_available() -> bool:
    return numba is not None


if numba is not None:  # pragma: no cover - requires numba

    @numba.njit(cache=True)
    def _evaluate_kernel(matrix, hw_rows, hd_prev, hd_curr, samples, cols, weights, offsets, n_samples, gain):
        n_traces = matrix.shape[1]
        n_hw = hw_rows.shape[0]
        n_hd = hd_prev.shape[0]
        pool = np.empty((n_hw + n_hd, n_traces), np.float64)
        for i in range(n_hw):
            row = hw_rows[i]
            for t in range(n_traces):
                v = np.int64(matrix[row, t])
                n = 0
                while v != 0:
                    v &= v - 1
                    n += 1
                pool[i, t] = n
        for i in range(n_hd):
            prev = hd_prev[i]
            curr = hd_curr[i]
            for t in range(n_traces):
                v = np.int64(matrix[curr, t] ^ matrix[prev, t])
                n = 0
                while v != 0:
                    v &= v - 1
                    n += 1
                pool[n_hw + i, t] = n
        power = np.zeros((n_samples, n_traces), np.float64)
        for level in range(offsets.shape[0] - 1):
            for k in range(offsets[level], offsets[level + 1]):
                sample = samples[k]
                col = cols[k]
                weight = weights[k]
                if level == 0:
                    for t in range(n_traces):
                        power[sample, t] = weight * pool[col, t]
                else:
                    for t in range(n_traces):
                        power[sample, t] += weight * pool[col, t]
        if gain != 1.0:
            for s in range(n_samples):
                for t in range(n_traces):
                    power[s, t] *= gain
        return power


def _plan_arrays(plan):  # pragma: no cover - requires numba
    """Flatten a plan's level-grouped passes once, cached on the plan."""
    cache = getattr(plan, "_numba_arrays", None)
    if cache is None:
        samples = np.concatenate([p[0] for p in plan.passes])
        cols = np.concatenate([p[1] for p in plan.passes])
        weights = np.concatenate([p[2].ravel() for p in plan.passes])
        offsets = np.zeros(len(plan.passes) + 1, dtype=np.intp)
        np.cumsum([p[0].size for p in plan.passes], out=offsets[1:])
        cache = (samples, cols, weights, offsets)
        plan._numba_arrays = cache
    return cache


def jit_packed_evaluate(plan, table, dtype):  # pragma: no cover - requires numba
    """The hook :mod:`repro.power.synth` consults when installed.

    Returns the evaluated power matrix, or ``None`` to decline (float32
    scratch path, empty plans) so the NumPy reference runs instead.
    """
    if np.dtype(dtype) != np.float64 or not plan.passes:
        return None
    samples, cols, weights, offsets = _plan_arrays(plan)
    power = _evaluate_kernel(
        table.matrix,
        plan.hw_rows,
        plan.hd_prev,
        plan.hd_curr,
        samples,
        cols,
        weights,
        offsets,
        plan.n_samples,
        plan.gain,
    )
    return power.T


class NumbaTapeBackend(SerialBackend):
    """Serial execution with the JIT'd packed-tape evaluator installed.

    ``start()`` installs the evaluator hook (first evaluation pays the
    JIT compile, cached on disk by numba thereafter); ``close()``
    restores whatever was installed before, so the backend nests safely.
    """

    name = "numba"

    def __init__(self):
        if numba is None:
            raise BackendUnavailable(
                "the numba backend needs the optional 'numba' package, which "
                "is not importable in this environment"
            )
        self._previous_hook: object = _UNSET

    def start(self) -> "NumbaTapeBackend":
        from repro.power import synth

        if self._previous_hook is _UNSET:
            self._previous_hook = synth.set_packed_evaluate_hook(jit_packed_evaluate)
        return self

    def close(self) -> None:
        from repro.power import synth

        if self._previous_hook is not _UNSET:
            synth.set_packed_evaluate_hook(self._previous_hook)
            self._previous_hook = _UNSET

    def describe(self) -> dict:
        info = super().describe()
        info["numba_version"] = getattr(numba, "__version__", None)
        return info


_UNSET = object()
