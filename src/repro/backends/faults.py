"""Picklable fault injectors for backend failure testing.

Worker-failure isolation is part of the backend contract: a task that
raises inside a worker must surface the *original* exception (with the
remote traceback chained) from the mapping call, the campaign must fail
cleanly, and the pool must not hang or leak.  Exercising that contract
under the spawn and persistent-pool backends requires the failing
callable to cross a pickle boundary, so these injectors live in the
package (module-level, state-only classes) rather than in the test
suite.

The *chaos harness* half of this module (:class:`FlakyTransform`,
:class:`HangingTransform`, :class:`CrashingWorker`,
:class:`CorruptingTransform`) drives the resilience layer: transient
faults that strike a bounded number of times and then clear, so a
correctly retrying runtime recovers the exact clean-run bytes.  "A
bounded number of times" has to hold *across processes and retries* —
a retried chunk may land in a different worker, or in a freshly rebuilt
pool — so the injectors count attempts through an
:class:`AttemptLedger`: a directory where claiming attempt *n* is an
atomic exclusive file creation.  Any cooperating process observes the
same monotone attempt sequence, no locks required.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

from repro.backends.resilience import TransientChunkError


class InjectedWorkerError(RuntimeError):
    """The distinguished error every injector raises.

    Deliberately *not* retryable: the pre-resilience failure tests
    assert that a deterministic worker error surfaces immediately, and
    retrying a deterministic bug would only hide it.
    """


class FaultyTransform:
    """A power transform that always raises :class:`InjectedWorkerError`."""

    def __init__(self, message: str = "injected worker fault"):
        self.message = message

    def __call__(self, power: np.ndarray) -> np.ndarray:
        raise InjectedWorkerError(self.message)


class FaultyTransformFactory:
    """A transform factory that arms the fault on one chunk index.

    Chunks other than ``fail_index`` get the identity transform, so a
    multi-chunk stream makes real progress before the failure lands in
    whichever worker drew the poisoned chunk.
    """

    def __init__(self, fail_index: int, message: str = "injected worker fault"):
        self.fail_index = fail_index
        self.message = message

    def __call__(self, index: int):
        if index == self.fail_index:
            return FaultyTransform(f"{self.message} (chunk {index})")
        return _identity


def _identity(power: np.ndarray) -> np.ndarray:
    return power


def faulty_item(item):
    """A :meth:`map_items` work function that raises on ``"boom"``."""
    if item == "boom":
        raise InjectedWorkerError(f"injected item fault ({item!r})")
    return item


class AttemptLedger:
    """Cross-process attempt counting by atomic exclusive file creation.

    ``claim(key)`` returns 1 on its first call for ``key`` *anywhere* —
    parent, fork child, spawn child, a worker in a rebuilt pool — and
    n on the n-th, because claiming attempt n means winning the
    ``O_CREAT | O_EXCL`` race for ``<dir>/<key>.n``.  The injectors use
    it to fail exactly their first N attempts and then clear.
    """

    def __init__(self, directory: str):
        self.directory = str(directory)

    def claim(self, key: str) -> int:
        os.makedirs(self.directory, exist_ok=True)
        attempt = 1
        while True:
            path = os.path.join(self.directory, f"{key}.{attempt:04d}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                attempt += 1
                continue
            os.close(fd)
            return attempt

    def count(self, key: str) -> int:
        """Attempts claimed for ``key`` so far (0 if none)."""
        if not os.path.isdir(self.directory):
            return 0
        prefix = f"{key}."
        return sum(1 for name in os.listdir(self.directory) if name.startswith(prefix))


class _ChaosTransform:
    """Shared arming logic: fault on ledger claims in ``(skip, skip+times]``.

    ``skip`` lets a test exempt leading transform applications from the
    fault — most usefully the engine's quantizer-calibration pass, which
    applies chunk 0's transform in the *parent* before any worker runs.
    """

    def __init__(self, ledger_dir: str, times: int, key: str, skip: int):
        self.ledger = AttemptLedger(ledger_dir)
        self.times = int(times)
        self.key = key
        self.skip = int(skip)

    def _claim(self) -> tuple[int, bool]:
        attempt = self.ledger.claim(self.key)
        return attempt, self.skip < attempt <= self.skip + self.times


class FlakyTransform(_ChaosTransform):
    """Fails its first ``fail_times`` armed attempts, then passes power through.

    Raises :class:`~repro.backends.resilience.TransientChunkError`
    (retryable), so a retry policy with enough attempts recovers the
    clean-run bytes exactly — the failing attempts never touch the
    power trace.
    """

    def __init__(self, ledger_dir: str, fail_times: int = 1, key: str = "flaky", skip: int = 0):
        super().__init__(ledger_dir, fail_times, key, skip)

    def __call__(self, power: np.ndarray) -> np.ndarray:
        attempt, armed = self._claim()
        if armed:
            raise TransientChunkError(
                f"injected flaky fault (attempt {attempt}, fails {self.times})"
            )
        return power


class HangingTransform(_ChaosTransform):
    """Hangs its first ``hang_times`` armed attempts, then passes power through.

    The hang is a plain sleep of ``hang_seconds`` — long enough to trip
    any sane watchdog deadline, short enough that a test whose watchdog
    is misconfigured still terminates.  Under a pool backend the
    watchdog fires, the pool is killed and rebuilt, and the re-dispatch
    claims the next (clean) attempt.
    """

    def __init__(
        self,
        ledger_dir: str,
        hang_times: int = 1,
        hang_seconds: float = 120.0,
        key: str = "hang",
        skip: int = 0,
    ):
        super().__init__(ledger_dir, hang_times, key, skip)
        self.hang_seconds = float(hang_seconds)

    def __call__(self, power: np.ndarray) -> np.ndarray:
        _attempt, armed = self._claim()
        if armed:
            time.sleep(self.hang_seconds)
        return power


class CrashingWorker(_ChaosTransform):
    """SIGKILLs the hosting worker process on its armed attempts.

    A killed worker cannot report anything — its chunk's result simply
    never arrives, which is exactly the signature the watchdog turns
    into a :class:`~repro.backends.resilience.WatchdogTimeout`.  The
    parent pid is recorded at construction time as a safety interlock:
    if the transform ever runs *in the parent* (serial fallback, a
    misconfigured test) it degrades to a retryable
    :class:`~repro.backends.resilience.TransientChunkError` instead of
    killing the campaign driver.
    """

    def __init__(self, ledger_dir: str, crash_times: int = 1, key: str = "crash", skip: int = 0):
        super().__init__(ledger_dir, crash_times, key, skip)
        self.parent_pid = os.getpid()

    def __call__(self, power: np.ndarray) -> np.ndarray:
        attempt, armed = self._claim()
        if armed:
            if os.getpid() == self.parent_pid:
                raise TransientChunkError(
                    f"injected crash demoted to transient fault in parent "
                    f"process (attempt {attempt}, crashes {self.times})"
                )
            os.kill(os.getpid(), signal.SIGKILL)
        return power


class CorruptingTransform(_ChaosTransform):
    """Poisons power with NaN on its armed attempts.

    NaN survives the whole capture chain (filtering, decimation,
    quantization all propagate it), so the corruption reaches the chunk
    result where the engine's per-chunk finiteness validation rejects it
    as a :class:`~repro.backends.resilience.ChunkCorruption` — retryable,
    and gone by the next attempt.
    """

    def __init__(self, ledger_dir: str, corrupt_times: int = 1, key: str = "corrupt", skip: int = 0):
        super().__init__(ledger_dir, corrupt_times, key, skip)

    def __call__(self, power: np.ndarray) -> np.ndarray:
        _attempt, armed = self._claim()
        if armed:
            poisoned = np.array(power, dtype=float, copy=True)
            poisoned[..., : max(1, poisoned.shape[-1] // 8)] = np.nan
            return poisoned
        return power
