"""Picklable fault injectors for backend failure testing.

Worker-failure isolation is part of the backend contract: a task that
raises inside a worker must surface the *original* exception (with the
remote traceback chained) from the mapping call, the campaign must fail
cleanly, and the pool must not hang or leak.  Exercising that contract
under the spawn and persistent-pool backends requires the failing
callable to cross a pickle boundary, so these injectors live in the
package (module-level, state-only classes) rather than in the test
suite.
"""

from __future__ import annotations

import numpy as np


class InjectedWorkerError(RuntimeError):
    """The distinguished error every injector raises."""


class FaultyTransform:
    """A power transform that always raises :class:`InjectedWorkerError`."""

    def __init__(self, message: str = "injected worker fault"):
        self.message = message

    def __call__(self, power: np.ndarray) -> np.ndarray:
        raise InjectedWorkerError(self.message)


class FaultyTransformFactory:
    """A transform factory that arms the fault on one chunk index.

    Chunks other than ``fail_index`` get the identity transform, so a
    multi-chunk stream makes real progress before the failure lands in
    whichever worker drew the poisoned chunk.
    """

    def __init__(self, fail_index: int, message: str = "injected worker fault"):
        self.fail_index = fail_index
        self.message = message

    def __call__(self, index: int):
        if index == self.fail_index:
            return FaultyTransform(f"{self.message} (chunk {index})")
        return _identity


def _identity(power: np.ndarray) -> np.ndarray:
    return power


def faulty_item(item):
    """A :meth:`map_items` work function that raises on ``"boom"``."""
    if item == "boom":
        raise InjectedWorkerError(f"injected item fault ({item!r})")
    return item
