"""Zero-copy chunk transport over ``multiprocessing.shared_memory``.

The pickle transport serializes every chunk's trace block into the pool
result pipe and deserializes it in the parent — two full copies plus
pipe traffic for data that both sides could simply map.  The shm
transport instead has the worker write its traces into a named POSIX
shared-memory segment and ship only a tiny descriptor
(:class:`ShmChunkPayload`); the parent maps the segment and wraps it in
a numpy array **without copying**, unlinking the name immediately so
the segment's lifetime is exactly the array's mapping.

Ownership protocol (Python 3.11 registers segments with the resource
tracker on *both* create and attach):

1. the worker creates the segment under a deterministic name, copies
   the chunk in, **unregisters** it from its own tracker (ownership is
   being transferred) and closes its mapping;
2. the parent attaches (its tracker now owns the name), unlinks the
   name on the spot — the memory stays valid while mapped, and a parent
   crash after this point can no longer leak the name — and hands out a
   zero-copy array whose finalizer closes the mapping;
3. deterministic names make retries and crash recovery idempotent: a
   worker re-dispatched after a SIGKILL first unlinks any leftover
   segment from the dead attempt, and the engine sweeps all of a
   stream's names in a ``finally`` so no fault path leaks ``/dev/shm``
   entries.

Fallbacks: a chunk whose executed path diverged from the parent's
compiled schedule ships as a whole pickled
:class:`~repro.power.acquisition.TraceSet` (exactly like the slim
transport), and :func:`shm_available` lets callers degrade to pickle on
platforms without POSIX shared memory.
"""

from __future__ import annotations

import atexit
import os
import weakref
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.backends.resilience import ChunkCorruption

_AVAILABLE: bool | None = None

#: Attached segments whose zero-copy arrays have died but whose mapping
#: could not be closed yet.  An ndarray finalizer runs *during* the
#: array's deallocation, before the buffer export is released, so
#: ``close()`` at that moment raises ``BufferError``; the finalizer
#: instead parks the segment here and the next sweep closes it.
_GRAVEYARD: list = []


def _bury(segment) -> None:
    _GRAVEYARD.append(segment)


def sweep_graveyard() -> int:
    """Close parked segment mappings whose exports are gone.

    Runs on every :meth:`ShmChunkPayload.materialize` (bounding the
    number of open mappings over a long stream), on
    :meth:`ShmCodec.cleanup`, and at interpreter exit.  Returns how many
    mappings remain parked (still referenced by live arrays).
    """
    remaining = []
    for segment in _GRAVEYARD:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a view is still alive
            remaining.append(segment)
    _GRAVEYARD[:] = remaining
    return len(remaining)


def _shutdown() -> None:  # pragma: no cover - exercised at interpreter exit
    """Detach straggler mappings so teardown stays silent.

    Memory was unlinked at materialize time, so an unclosed mapping
    cannot leak past the process; this only prevents ``BufferError``
    noise from ``SharedMemory.__del__`` during interpreter teardown.
    """
    sweep_graveyard()
    for segment in _GRAVEYARD:
        if segment._fd >= 0:
            try:
                os.close(segment._fd)
            except OSError:
                pass
            segment._fd = -1
        segment._mmap = None
        segment._buf = None
    _GRAVEYARD.clear()


atexit.register(_shutdown)


def shm_available() -> bool:
    """Can this platform create and unlink POSIX shared memory?"""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


def segment_name(token: str, index: int) -> str:
    return f"repro-{token}-c{index}"


def _unlink_quietly(name: str) -> None:
    """Remove a leftover segment (dead attempt, killed run), if any."""
    from multiprocessing import shared_memory

    try:
        leftover = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return
    try:
        leftover.close()
        leftover.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - raced cleanup
        pass


class ShmArray(np.ndarray):
    """A plain ndarray view that supports weak references.

    Base ``numpy.ndarray`` objects cannot be weak-referenced, and the
    parent needs a finalizer on the zero-copy array to close the
    segment mapping once the last consumer lets go.
    """


@dataclass
class ShmChunkPayload:
    """The descriptor that replaces a chunk's trace block on the wire."""

    name: str
    shape: tuple
    dtype: str
    table: Any
    power: Any
    _cached: tuple | None = field(default=None, repr=False, compare=False)

    def materialize(self) -> tuple:
        """Attach, unlink, and wrap the segment as ``(traces, table, power)``.

        Zero-copy: the returned traces array maps the shared segment
        directly; a finalizer closes the mapping when the array dies.
        Idempotent per delivered payload (validation and rewrap both
        call it), and a missing segment — a worker that died between
        creating and filling it never reports success, so this means
        external interference — raises a retryable
        :class:`~repro.backends.ChunkCorruption`.
        """
        if self._cached is not None:
            return self._cached
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(name=self.name)
        except (FileNotFoundError, OSError) as error:
            raise ChunkCorruption(
                f"shared-memory segment '{self.name}' vanished before the "
                f"parent attached ({error})"
            ) from error
        # Unlink on the spot: the mapping keeps the memory alive, and
        # from here no crash can leak the /dev/shm name.
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - raced cleanup
            pass
        dtype = np.dtype(self.dtype)
        count = int(np.prod(self.shape, dtype=np.int64))
        traces = (
            np.frombuffer(segment.buf, dtype=dtype, count=count)
            .reshape(self.shape)
            .view(ShmArray)
        )
        weakref.finalize(traces, _bury, segment)
        sweep_graveyard()
        self._cached = (traces, self.table, self.power)
        return self._cached


@dataclass(frozen=True)
class ShmCodec:
    """Worker-side codec: trace blocks into named shared segments.

    ``token`` is derived deterministically from the stream fingerprint,
    so a run killed and resumed reuses — and therefore can clean up —
    the same names.  (Corollary: don't run the *same* campaign twice
    concurrently with the shm transport.)
    """

    token: str

    def encode(self, task, trace_set, parent_path):
        if parent_path is None or trace_set.path != parent_path:
            # Divergent recompiled chunk: ship it whole, like the slim
            # transport does — correctness over transport savings.
            return trace_set
        from multiprocessing import resource_tracker, shared_memory

        traces = np.ascontiguousarray(trace_set.traces)
        name = segment_name(self.token, task.index)
        _unlink_quietly(name)  # leftover of a SIGKILLed earlier attempt
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=traces.nbytes
        )
        view = np.frombuffer(segment.buf, dtype=traces.dtype, count=traces.size)
        view[:] = traces.ravel()
        del view
        # Hand ownership to the parent: this process's tracker must
        # forget the name or it would unlink it again at worker exit.
        resource_tracker.unregister(segment._name, "shared_memory")
        segment.close()
        return ShmChunkPayload(
            name=name,
            shape=traces.shape,
            dtype=str(traces.dtype),
            table=trace_set.table,
            power=trace_set.power,
        )

    def cleanup(self, n_tasks: int) -> None:
        """Unlink every segment this stream could have created.

        Runs in the engine's ``finally``: covers chunks that were
        encoded but never consumed (a fault aborting the stream, a
        consumer abandoning the generator) and leftovers of a killed
        previous run under the same fingerprint.
        """
        for index in range(n_tasks):
            _unlink_quietly(segment_name(self.token, index))
        sweep_graveyard()
