"""The :class:`ExecutionBackend` protocol and its in-process reference.

A backend executes a campaign's *chunk tasks* — declarative descriptions
of one trace-range acquisition (chunk bounds, a counter range via
``trace_offset``, the chunk's scope seed) — and returns their results in
task order.  The streaming engine builds the task list and a
:class:`BackendContext` (the live campaign, the input batch, the power
transforms), then dispatches through whichever backend the caller's
policy resolves to; every backend is required to be byte-identical to
:class:`SerialBackend` for float32 campaigns, where the counter-based
scope noise makes any sharding of the trace axis a no-op by
construction.

Backends also expose a generic ordered :meth:`ExecutionBackend.map_items`
for coarser fan-out units (the sweep engine parallelizes whole grid
points through it).

Lifecycle: ``start()`` acquires worker resources (a no-op for the
per-call pool backends), ``close()`` releases them, and backends are
context managers.  ``describe()`` reports provenance metadata — backend
name, start method, worker count, host core count, numba availability —
that result envelopes and the benchmark harness embed so throughput
numbers stay interpretable across machines.
"""

from __future__ import annotations

import abc
import hashlib
import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.backends.resilience import ResilienceContext, run_attempts
from repro.power.acquisition import (
    BatchInputs,
    CompiledAcquisition,
    TraceCampaign,
    TraceSet,
)


class BackendUnavailable(RuntimeError):
    """The requested backend cannot run in this environment."""


class BackendDegradationWarning(UserWarning):
    """A parallel run silently would have run serial; now it says so.

    Emitted (once per call site, via the default warnings filter) when
    ``jobs > 1`` was requested but no parallel backend is usable; the
    :class:`~repro.api.session.Session` additionally records the message
    in the result envelope's ``notes``.
    """


@dataclass(frozen=True)
class ChunkTask:
    """One declarative unit of acquisition work.

    Everything a worker needs that is *per-chunk* lives here; the
    campaign-wide state (program, configs, pinned full-scale) travels in
    the :class:`BackendContext` (live objects for fork-style backends, a
    pickle-safe :class:`CampaignSpec` for spawn-style ones).
    ``trace_offset`` is the chunk's absolute counter range into the
    float32 chain's Philox noise tape — the field that makes any
    sharding byte-identical.
    """

    index: int
    lo: int
    hi: int
    scope_seed: int
    trace_offset: int


@dataclass(frozen=True)
class CampaignSpec:
    """A pickle-safe recipe that rebuilds a :class:`TraceCampaign`.

    The compiled schedule and the replay tape hold closures and cannot
    cross a pickle boundary, but everything they are compiled *from*
    can.  Spawn-style workers rebuild the campaign from this spec and
    compile once per process (the worker keeps an identity-keyed cache,
    so a persistent pool re-seeds it a single time per campaign shape).

    ``pinned_full_scale`` carries the parent's resolved ADC full-scale
    so every worker quantizes against the same LSB the serial path uses.
    """

    program: Any
    config: Any
    profile: Any
    scope: Any
    entry: str | None
    window_cycles: tuple[int, int] | None
    seed: int
    keep_power: bool
    use_tape: bool
    pinned_full_scale: float | None

    @classmethod
    def from_campaign(cls, campaign: TraceCampaign) -> "CampaignSpec":
        return cls(
            program=campaign.program,
            config=campaign.config,
            profile=campaign.profile,
            scope=campaign.scope_config,
            entry=campaign.entry,
            window_cycles=campaign.window_cycles,
            seed=campaign.seed,
            keep_power=campaign.keep_power,
            use_tape=campaign.use_tape,
            pinned_full_scale=campaign.pinned_full_scale,
        )

    def build(self) -> TraceCampaign:
        campaign = TraceCampaign(
            self.program,
            config=self.config,
            profile=self.profile,
            scope=self.scope,
            entry=self.entry,
            window_cycles=self.window_cycles,
            seed=self.seed,
            keep_power=self.keep_power,
            use_tape=self.use_tape,
        )
        campaign.pinned_full_scale = self.pinned_full_scale
        return campaign

    def cache_key(self) -> str:
        """A digest identifying the campaign shape a worker may cache.

        Deliberately excludes ``pinned_full_scale`` and ``seed`` — both
        vary per campaign without invalidating the compiled schedule a
        cached worker campaign holds (acquire() re-checks the input
        signature and path itself).
        """
        payload = (
            self.program,
            self.config,
            self.profile,
            self.scope,
            self.entry,
            self.window_cycles,
            self.keep_power,
            self.use_tape,
        )
        return hashlib.sha256(pickle.dumps(payload)).hexdigest()


@dataclass
class BackendContext:
    """Campaign-wide state one :meth:`map_chunks` call runs against."""

    campaign: TraceCampaign
    inputs: BatchInputs
    power_transform: Callable[[np.ndarray], np.ndarray] | None = None
    power_transform_factory: Callable[[int], Callable] | None = None
    #: chunk 0's resolved transform, precomputed by the engine so the
    #: serial path evaluates ``factory(0)`` exactly once
    transform0: Callable[[np.ndarray], np.ndarray] | None = None
    #: the parent's compiled triple, for slim-payload rewrapping
    compiled: CompiledAcquisition | None = None
    #: retry/watchdog/validation state (None: historical dispatch paths)
    resilience: "ResilienceContext | None" = None
    #: worker-side chunk codec — an object with
    #: ``encode(task, trace_set, parent_path) -> payload`` applied to
    #: every chunk result *before* it crosses the process boundary
    #: (fold states for ``reduce="worker"``, shared-memory descriptors
    #: for the shm transport); ``None`` keeps the historical payloads
    codec: Any | None = None
    _spec: CampaignSpec | None = field(default=None, repr=False)

    def transform_for(self, index: int):
        if index == 0:
            return self.transform0
        if self.power_transform_factory is not None:
            return self.power_transform_factory(index)
        return self.power_transform

    def spec(self) -> CampaignSpec:
        """The declarative (pickle-safe) form, built at most once."""
        if self._spec is None:
            self._spec = CampaignSpec.from_campaign(self.campaign)
        return self._spec

    def compiled_path(self) -> list[int] | None:
        return self.compiled.path if self.compiled is not None else None

    def assert_picklable(self, backend_name: str) -> None:
        """Spawn-style backends need the declarative context to pickle.

        The campaign constituents always do; the power transforms are
        the caller's objects and often closures, so name the offender
        precisely when they do not.
        """
        for label, obj in (
            ("power_transform", self.power_transform),
            ("power_transform_factory", self.power_transform_factory),
            ("codec", self.codec),
        ):
            if obj is None:
                continue
            try:
                pickle.dumps(obj)
            except Exception as error:
                raise BackendUnavailable(
                    f"backend '{backend_name}' ships tasks by pickle, but "
                    f"{label} {obj!r} is not picklable ({error}); use a "
                    "module-level callable, the fork backend, or serial"
                ) from error


#: ``(index, lo, payload)`` where payload is a full :class:`TraceSet`,
#: the slim ``(traces, table, power)`` triple to rewrap against the
#: parent's compiled schedule, or whatever the context's ``codec``
#: encoded (a fold state, a shared-memory descriptor).
ChunkResult = tuple[int, int, Any]


def slim_payload(trace_set: TraceSet, parent_path: list[int] | None):
    """Strip shared compiled objects when the worker's path matches.

    The parent holds the same compiled schedule (inherited at fork, or
    structurally identical under spawn), so only the per-chunk arrays
    need to cross the pipe; a recompiled divergent chunk ships whole.
    """
    if parent_path is not None and trace_set.path == parent_path:
        return trace_set.traces, trace_set.table, trace_set.power
    return trace_set


def encode_chunk(codec, task: ChunkTask, trace_set: TraceSet, parent_path):
    """Apply the context codec (or the slim default) to one chunk result.

    This runs on the worker side of the process boundary — the whole
    point of a codec is to shrink what crosses it — and uniformly in
    the serial backend, so validators and consumers see one payload
    shape per campaign regardless of backend.
    """
    if codec is not None:
        return codec.encode(task, trace_set, parent_path)
    return slim_payload(trace_set, parent_path)


class ExecutionBackend(abc.ABC):
    """Where a campaign's chunk tasks (or any ordered fan-out) execute."""

    name: str = "?"
    start_method: str | None = None

    def start(self) -> "ExecutionBackend":
        """Acquire worker resources; idempotent.  Returns ``self``."""
        return self

    def close(self) -> None:
        """Release worker resources; idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def workers(self) -> int:
        return 1

    def describe(self) -> dict:
        """Provenance metadata for envelopes and benchmark records."""
        return {
            "backend": self.name,
            "start_method": self.start_method,
            "workers": self.workers,
            "persistent": False,
            "cpu_count": os.cpu_count(),
            "numba": _numba_available(),
        }

    @abc.abstractmethod
    def map_chunks(
        self, context: BackendContext, tasks: Sequence[ChunkTask]
    ) -> Iterator[ChunkResult]:
        """Execute every task, yielding results in task order."""

    def map_items(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Generic ordered fan-out (``[fn(item) for item in items]``)."""
        return [fn(item) for item in items]


def run_chunk_task(
    campaign: TraceCampaign,
    inputs: BatchInputs,
    task: ChunkTask,
    transform: Callable[[np.ndarray], np.ndarray] | None,
) -> TraceSet:
    """The one acquisition call every backend funnels a task through."""
    return campaign.acquire(
        inputs.slice(task.lo, task.hi),
        power_transform=transform,
        scope_seed=task.scope_seed,
        trace_offset=task.trace_offset,
    )


class SerialBackend(ExecutionBackend):
    """The in-process reference implementation every backend must match.

    With a :class:`~repro.backends.resilience.ResilienceContext` on the
    context, each task runs under the retry policy (validation included).
    There is no watchdog serially — a soft deadline cannot preempt the
    thread doing the work — so ``chunk_timeout`` is a no-op here; hangs
    are a parallel-backend failure mode and recover there.
    """

    name = "serial"

    def map_chunks(
        self, context: BackendContext, tasks: Sequence[ChunkTask]
    ) -> Iterator[ChunkResult]:
        resilience = context.resilience
        codec = context.codec
        parent_path = context.compiled_path()

        def produce(task: ChunkTask):
            # The codec runs inside the attempt so a retried chunk
            # re-encodes from scratch and validators always see the
            # same payload shape the pool backends deliver.
            trace_set = run_chunk_task(
                context.campaign, context.inputs, task, context.transform_for(task.index)
            )
            if codec is not None:
                return codec.encode(task, trace_set, parent_path)
            return trace_set

        for task in tasks:
            if resilience is None:
                payload = produce(task)
            else:
                payload = run_attempts(
                    resilience, task, lambda attempt: produce(task), self.name
                )
            yield task.index, task.lo, payload


def _numba_available() -> bool:
    from repro.backends.numba_tape import numba_available

    return numba_available()
