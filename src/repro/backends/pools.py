"""Process-pool backends: fork, spawn, and a persistent worker pool.

Three ways to put more cores behind a campaign, all byte-identical to
:class:`~repro.backends.base.SerialBackend` by construction:

* :class:`ForkBackend` — a pool forked per :meth:`map_chunks` call.  The
  live campaign (with its compiled schedule and replay tape) and the
  full input batch are inherited copy-on-write at fork time, so nothing
  campaign-sized crosses a pipe.  The fastest option where ``fork``
  exists; unavailable on spawn-only platforms.
* :class:`SpawnBackend` — a pool spawned per call.  Workers receive a
  declarative :class:`~repro.backends.base.CampaignSpec` (pickle-safe by
  contract) and recompile the schedule once per worker; chunk tasks are
  pure data.  Slower to start, but works everywhere — this is what
  ``jobs > 1`` degrades to where fork is unavailable, instead of the
  historical silent serial fallback.
* :class:`PoolBackend` — a **persistent** pool (fork- or spawn-started)
  that keeps workers alive across ``map_chunks``/``map_items`` calls.
  Tasks are fully declarative (each carries its spec and input slice);
  each worker keeps an identity-keyed campaign cache, so a sweep or a
  ``Session.run_all`` re-seeds the compiled-schedule cache once per
  campaign shape and then pays zero pool-setup or recompile cost per
  point.  A worker that raises reports the failure (with the original
  traceback chained as ``__cause__``) without poisoning the pool.

Worker-side state lives in module globals installed by pool
initializers; results stream back in task order via ``imap``.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.backends.base import (
    BackendContext,
    BackendUnavailable,
    CampaignSpec,
    ChunkResult,
    ChunkTask,
    ExecutionBackend,
    run_chunk_task,
)
from repro.power.acquisition import TraceCampaign, TraceSet


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _pool_size(jobs: int, n_tasks: int | None = None) -> int:
    size = max(1, int(jobs))
    if n_tasks is not None:
        size = min(size, max(1, n_tasks))
    return size


def _slim_payload(trace_set: TraceSet, parent_path: list[int] | None):
    """Strip shared compiled objects when the worker's path matches.

    The parent holds the same compiled schedule (inherited at fork, or
    structurally identical under spawn), so only the per-chunk arrays
    need to cross the pipe; a recompiled divergent chunk ships whole.
    """
    if parent_path is not None and trace_set.path == parent_path:
        return trace_set.traces, trace_set.table, trace_set.power
    return trace_set


# -- fork workers (state inherited copy-on-write at fork) ---------------

_FORK_STATE: dict = {}


def _fork_init(campaign, inputs, transform, factory, parent_path) -> None:  # pragma: no cover
    _FORK_STATE["campaign"] = campaign
    _FORK_STATE["inputs"] = inputs
    _FORK_STATE["transform"] = transform
    _FORK_STATE["factory"] = factory
    _FORK_STATE["parent_path"] = parent_path


def _fork_chunk(task: ChunkTask):  # pragma: no cover - exercised via Pool
    campaign: TraceCampaign = _FORK_STATE["campaign"]
    factory = _FORK_STATE["factory"]
    transform = factory(task.index) if factory is not None else _FORK_STATE["transform"]
    trace_set = run_chunk_task(campaign, _FORK_STATE["inputs"], task, transform)
    return task.index, task.lo, _slim_payload(trace_set, _FORK_STATE["parent_path"])


# -- spawn workers (state rebuilt from the pickled spec) ----------------

_SPAWN_STATE: dict = {}


def _spawn_init(spec, inputs, transform, factory, parent_path) -> None:  # pragma: no cover
    _SPAWN_STATE["campaign"] = spec.build()
    _SPAWN_STATE["inputs"] = inputs
    _SPAWN_STATE["transform"] = transform
    _SPAWN_STATE["factory"] = factory
    _SPAWN_STATE["parent_path"] = parent_path


def _spawn_chunk(task: ChunkTask):  # pragma: no cover - exercised via Pool
    campaign: TraceCampaign = _SPAWN_STATE["campaign"]
    factory = _SPAWN_STATE["factory"]
    transform = factory(task.index) if factory is not None else _SPAWN_STATE["transform"]
    trace_set = run_chunk_task(campaign, _SPAWN_STATE["inputs"], task, transform)
    return task.index, task.lo, _slim_payload(trace_set, _SPAWN_STATE["parent_path"])


# -- persistent-pool workers (fully declarative tasks) ------------------

#: spec cache_key -> rebuilt TraceCampaign, kept warm across calls
_POOL_CAMPAIGNS: dict[str, TraceCampaign] = {}


def _pool_init() -> None:  # pragma: no cover - exercised via Pool
    _POOL_CAMPAIGNS.clear()


def _pool_campaign(spec: CampaignSpec) -> TraceCampaign:  # pragma: no cover
    key = spec.cache_key()
    campaign = _POOL_CAMPAIGNS.get(key)
    if campaign is None:
        campaign = spec.build()
        _POOL_CAMPAIGNS[key] = campaign
    # Per-campaign state the cached shape does not capture.
    campaign.seed = spec.seed
    campaign.pinned_full_scale = spec.pinned_full_scale
    return campaign


def _pool_chunk(payload):  # pragma: no cover - exercised via Pool
    spec, chunk_inputs, transform, factory, task, parent_path = payload
    campaign = _pool_campaign(spec)
    if factory is not None:
        transform = factory(task.index)
    trace_set = campaign.acquire(
        chunk_inputs,
        power_transform=transform,
        scope_seed=task.scope_seed,
        trace_offset=task.trace_offset,
    )
    return task.index, task.lo, _slim_payload(trace_set, parent_path)


def _apply(payload):  # pragma: no cover - exercised via Pool
    fn, item = payload
    return fn(item)


class _PoolBackendBase(ExecutionBackend):
    """Shared per-call pool plumbing for the fork and spawn backends."""

    def __init__(self, jobs: int = 2):
        self.jobs = max(1, int(jobs))

    @property
    def workers(self) -> int:
        return self.jobs

    def _context(self):
        return multiprocessing.get_context(self.start_method)

    def _check_available(self) -> None:
        if self.start_method not in multiprocessing.get_all_start_methods():
            raise BackendUnavailable(
                f"start method '{self.start_method}' is unavailable on this "
                f"platform (has: {multiprocessing.get_all_start_methods()})"
            )

    def map_items(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        self._check_available()
        payloads = [(fn, item) for item in items]
        if len(payloads) <= 1:
            return [fn(item) for _fn, item in payloads]
        with self._context().Pool(processes=_pool_size(self.jobs, len(payloads))) as pool:
            return list(pool.imap(_apply, payloads))


class ForkBackend(_PoolBackendBase):
    """A fork pool per call; campaign state inherited copy-on-write."""

    name = "fork"
    start_method = "fork"

    def map_chunks(
        self, context: BackendContext, tasks: Sequence[ChunkTask]
    ) -> Iterator[ChunkResult]:
        self._check_available()
        with self._context().Pool(
            processes=_pool_size(self.jobs, len(tasks)),
            initializer=_fork_init,
            initargs=(
                context.campaign,
                context.inputs,
                context.power_transform,
                context.power_transform_factory,
                context.compiled_path(),
            ),
        ) as pool:
            yield from pool.imap(_fork_chunk, tasks)


class SpawnBackend(_PoolBackendBase):
    """A spawn pool per call; campaign state rebuilt from a pickled spec."""

    name = "spawn"
    start_method = "spawn"

    def map_chunks(
        self, context: BackendContext, tasks: Sequence[ChunkTask]
    ) -> Iterator[ChunkResult]:
        self._check_available()
        context.assert_picklable(self.name)
        with self._context().Pool(
            processes=_pool_size(self.jobs, len(tasks)),
            initializer=_spawn_init,
            initargs=(
                context.spec(),
                context.inputs,
                context.power_transform,
                context.power_transform_factory,
                context.compiled_path(),
            ),
        ) as pool:
            yield from pool.imap(_spawn_chunk, tasks)


class PoolBackend(ExecutionBackend):
    """A persistent worker pool reused across campaigns and sweeps.

    Unlike the per-call backends, ``start()`` builds the pool once and
    every subsequent :meth:`map_chunks`/:meth:`map_items` call reuses
    the warm workers: each worker keeps the campaigns it has rebuilt
    (and their compiled schedules) in a cache keyed by the spec's
    structural identity, so repeated campaigns over the same workload —
    a sweep's grid points, a session's scenario batch — compile once per
    worker and then stream pure data.

    A task that raises inside a worker surfaces the original exception
    (with the remote traceback chained) from the mapping call; the pool
    itself stays healthy and subsequent calls keep working.
    """

    name = "pool"

    def __init__(self, jobs: int = 2, start_method: str | None = None):
        self.jobs = max(1, int(jobs))
        if start_method is None:
            start_method = "fork" if fork_available() else "spawn"
        if start_method not in multiprocessing.get_all_start_methods():
            raise BackendUnavailable(
                f"start method '{start_method}' is unavailable on this platform"
            )
        self.start_method = start_method
        self._pool = None
        #: total tasks dispatched over the pool's lifetime (provenance)
        self.tasks_dispatched = 0

    @property
    def workers(self) -> int:
        return self.jobs

    def start(self) -> "PoolBackend":
        if self._pool is None:
            self._pool = multiprocessing.get_context(self.start_method).Pool(
                processes=self.jobs, initializer=_pool_init
            )
        return self

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def describe(self) -> dict:
        info = super().describe()
        info["persistent"] = True
        info["tasks_dispatched"] = self.tasks_dispatched
        return info

    def _live_pool(self):
        self.start()
        return self._pool

    def map_chunks(
        self, context: BackendContext, tasks: Sequence[ChunkTask]
    ) -> Iterator[ChunkResult]:
        context.assert_picklable(self.name)
        spec = context.spec()
        parent_path = context.compiled_path()
        payloads = [
            (
                spec,
                context.inputs.slice(task.lo, task.hi),
                context.power_transform,
                context.power_transform_factory,
                task,
                parent_path,
            )
            for task in tasks
        ]
        self.tasks_dispatched += len(payloads)
        yield from self._live_pool().imap(_pool_chunk, payloads)

    def map_items(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        payloads = [(fn, item) for item in items]
        self.tasks_dispatched += len(payloads)
        return list(self._live_pool().imap(_apply, payloads))


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1
