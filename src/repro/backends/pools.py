"""Process-pool backends: fork, spawn, and a persistent worker pool.

Three ways to put more cores behind a campaign, all byte-identical to
:class:`~repro.backends.base.SerialBackend` by construction:

* :class:`ForkBackend` — a pool forked per :meth:`map_chunks` call.  The
  live campaign (with its compiled schedule and replay tape) and the
  full input batch are inherited copy-on-write at fork time, so nothing
  campaign-sized crosses a pipe.  The fastest option where ``fork``
  exists; unavailable on spawn-only platforms.
* :class:`SpawnBackend` — a pool spawned per call.  Workers receive a
  declarative :class:`~repro.backends.base.CampaignSpec` (pickle-safe by
  contract) and recompile the schedule once per worker; chunk tasks are
  pure data.  Slower to start, but works everywhere — this is what
  ``jobs > 1`` degrades to where fork is unavailable, instead of the
  historical silent serial fallback.
* :class:`PoolBackend` — a **persistent** pool (fork- or spawn-started)
  that keeps workers alive across ``map_chunks``/``map_items`` calls.
  Tasks are fully declarative (each carries its spec and input slice);
  each worker keeps an identity-keyed campaign cache, so a sweep or a
  ``Session.run_all`` re-seeds the compiled-schedule cache once per
  campaign shape and then pays zero pool-setup or recompile cost per
  point.  A worker that raises reports the failure (with the original
  traceback chained as ``__cause__``) without poisoning the pool.

Worker-side state lives in module globals installed by pool
initializers; results stream back in task order via ``imap`` on the
historical happy path.  When the engine attaches a
:class:`~repro.backends.resilience.ResilienceContext`, dispatch switches
to per-task ``apply_async`` with a watchdog ``get(timeout)``: a worker
that hangs *or* dies (SIGKILL included — the pool silently repopulates
the process, but the in-flight task's result never arrives) surfaces as
a :class:`~repro.backends.resilience.WatchdogTimeout`, the pool is
killed and replaced wholesale, and every not-yet-delivered chunk is
re-dispatched.  Ctrl-C always terminates and joins the children before
propagating, so an interrupted campaign leaves no orphaned workers.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.backends.base import (
    BackendContext,
    BackendUnavailable,
    CampaignSpec,
    ChunkResult,
    ChunkTask,
    ExecutionBackend,
    encode_chunk,
    run_chunk_task,
    slim_payload,
)
from repro.backends.resilience import (
    BackendBroken,
    ResilienceContext,
    WatchdogTimeout,
)
from repro.power.acquisition import TraceCampaign, TraceSet


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _pool_size(jobs: int, n_tasks: int | None = None) -> int:
    size = max(1, int(jobs))
    if n_tasks is not None:
        size = min(size, max(1, n_tasks))
    return size


#: Backwards-compatible alias: the slim-payload helper moved to base so
#: the serial backend can share it with codec dispatch.
_slim_payload = slim_payload


# -- fork workers (state inherited copy-on-write at fork) ---------------

_FORK_STATE: dict = {}


def _fork_init(campaign, inputs, transform, factory, parent_path, codec=None) -> None:  # pragma: no cover
    _FORK_STATE["campaign"] = campaign
    _FORK_STATE["inputs"] = inputs
    _FORK_STATE["transform"] = transform
    _FORK_STATE["factory"] = factory
    _FORK_STATE["parent_path"] = parent_path
    _FORK_STATE["codec"] = codec


def _fork_chunk(task: ChunkTask):  # pragma: no cover - exercised via Pool
    campaign: TraceCampaign = _FORK_STATE["campaign"]
    factory = _FORK_STATE["factory"]
    transform = factory(task.index) if factory is not None else _FORK_STATE["transform"]
    trace_set = run_chunk_task(campaign, _FORK_STATE["inputs"], task, transform)
    payload = encode_chunk(
        _FORK_STATE.get("codec"), task, trace_set, _FORK_STATE["parent_path"]
    )
    return task.index, task.lo, payload


# -- spawn workers (state rebuilt from the pickled spec) ----------------

_SPAWN_STATE: dict = {}


def _spawn_init(spec, inputs, transform, factory, parent_path, codec=None) -> None:  # pragma: no cover
    _SPAWN_STATE["campaign"] = spec.build()
    _SPAWN_STATE["inputs"] = inputs
    _SPAWN_STATE["transform"] = transform
    _SPAWN_STATE["factory"] = factory
    _SPAWN_STATE["parent_path"] = parent_path
    _SPAWN_STATE["codec"] = codec


def _spawn_chunk(task: ChunkTask):  # pragma: no cover - exercised via Pool
    campaign: TraceCampaign = _SPAWN_STATE["campaign"]
    factory = _SPAWN_STATE["factory"]
    transform = factory(task.index) if factory is not None else _SPAWN_STATE["transform"]
    trace_set = run_chunk_task(campaign, _SPAWN_STATE["inputs"], task, transform)
    payload = encode_chunk(
        _SPAWN_STATE.get("codec"), task, trace_set, _SPAWN_STATE["parent_path"]
    )
    return task.index, task.lo, payload


# -- persistent-pool workers (fully declarative tasks) ------------------

#: spec cache_key -> rebuilt TraceCampaign, kept warm across calls
_POOL_CAMPAIGNS: dict[str, TraceCampaign] = {}


def _pool_init() -> None:  # pragma: no cover - exercised via Pool
    _POOL_CAMPAIGNS.clear()


def _pool_campaign(spec: CampaignSpec) -> TraceCampaign:  # pragma: no cover
    key = spec.cache_key()
    campaign = _POOL_CAMPAIGNS.get(key)
    if campaign is None:
        campaign = spec.build()
        _POOL_CAMPAIGNS[key] = campaign
    # Per-campaign state the cached shape does not capture.
    campaign.seed = spec.seed
    campaign.pinned_full_scale = spec.pinned_full_scale
    return campaign


def _pool_chunk(payload):  # pragma: no cover - exercised via Pool
    spec, chunk_inputs, transform, factory, task, parent_path, codec = payload
    campaign = _pool_campaign(spec)
    if factory is not None:
        transform = factory(task.index)
    trace_set = campaign.acquire(
        chunk_inputs,
        power_transform=transform,
        scope_seed=task.scope_seed,
        trace_offset=task.trace_offset,
    )
    return task.index, task.lo, encode_chunk(codec, task, trace_set, parent_path)


def _apply(payload):  # pragma: no cover - exercised via Pool
    fn, item = payload
    return fn(item)


# -- resilient dispatch --------------------------------------------------


def _shutdown(pool) -> None:
    """Terminate a pool and wait for its children to actually exit."""
    pool.terminate()
    pool.join()


def _await_result(future, timeout: float | None, task: ChunkTask, backend_name: str):
    """Wait for one chunk result under the watchdog deadline.

    A worker exception re-raises here with its remote traceback chained
    (unchanged from the ``imap`` path); a missed deadline — hung worker
    or a dead one whose result will never arrive — becomes a
    :class:`WatchdogTimeout`.
    """
    try:
        return future.get(timeout)
    except multiprocessing.TimeoutError as error:
        raise WatchdogTimeout(
            f"chunk {task.index} missed its {timeout:g}s soft deadline on "
            f"backend '{backend_name}' (worker hung or died)"
        ) from error


def _resilient_dispatch(
    tasks: Sequence[ChunkTask],
    resilience: ResilienceContext,
    backend_name: str,
    *,
    acquire: Callable[[], Any],
    replace: Callable[[Any], Any],
    release: Callable[[Any], None],
    submit: Callable[[Any, ChunkTask], Any],
):
    """Per-task ``apply_async`` dispatch with retries and a watchdog.

    All tasks are submitted up front (the pool's task queue provides the
    same pipelining ``imap`` did) and results are consumed in task
    order.  A failed attempt is retried per the policy: task-level
    errors re-submit just that task; a watchdog timeout means the pool
    itself is suspect (a hung or killed worker still occupies it), so
    the pool is replaced via ``replace`` and every not-yet-delivered
    task is re-submitted against the fresh one.  Exhausting the budget
    on timeouts raises :class:`BackendBroken` — the engine's cue to
    quarantine this backend and fall down the degradation ladder.
    """
    policy = resilience.policy
    pool = acquire()
    try:
        futures: dict[int, Any] = {}
        attempts: dict[int, int] = dict.fromkeys((t.index for t in tasks), 0)
        delivered: set[int] = set()

        def submit_pending(target_pool) -> None:
            for t in tasks:
                if t.index not in delivered:
                    futures[t.index] = submit(target_pool, t)

        submit_pending(pool)
        for task in tasks:
            while True:
                attempts[task.index] += 1
                resilience.report.record_attempt()
                try:
                    index, lo, data = _await_result(
                        futures[task.index], resilience.chunk_timeout, task, backend_name
                    )
                    if resilience.validator is not None:
                        resilience.validator(task, data)
                    yield index, lo, data
                    delivered.add(task.index)
                    break
                except KeyboardInterrupt:
                    raise
                except Exception as error:
                    resilience.record_failure(error)
                    timed_out = isinstance(error, WatchdogTimeout)
                    exhausted = attempts[task.index] >= policy.max_attempts
                    if exhausted or not policy.retryable(error):
                        if timed_out:
                            raise BackendBroken(
                                backend_name,
                                f"backend '{backend_name}' exhausted "
                                f"{policy.max_attempts} attempt(s) on chunk "
                                f"{task.index}: {error}",
                            ) from error
                        raise
                    resilience.backoff(
                        task_index=task.index,
                        attempt=attempts[task.index],
                        error=error,
                        backend=backend_name,
                    )
                    if timed_out:
                        pool = replace(pool)
                        futures.clear()
                        submit_pending(pool)
                    else:
                        futures[task.index] = submit(pool, task)
    finally:
        release(pool)


class _PoolBackendBase(ExecutionBackend):
    """Shared per-call pool plumbing for the fork and spawn backends."""

    def __init__(self, jobs: int = 2):
        self.jobs = max(1, int(jobs))

    @property
    def workers(self) -> int:
        return self.jobs

    def _context(self):
        return multiprocessing.get_context(self.start_method)

    def _check_available(self) -> None:
        if self.start_method not in multiprocessing.get_all_start_methods():
            raise BackendUnavailable(
                f"start method '{self.start_method}' is unavailable on this "
                f"platform (has: {multiprocessing.get_all_start_methods()})"
            )

    def map_items(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        self._check_available()
        payloads = [(fn, item) for item in items]
        if len(payloads) <= 1:
            return [fn(item) for _fn, item in payloads]
        pool = self._context().Pool(processes=_pool_size(self.jobs, len(payloads)))
        try:
            return list(pool.imap(_apply, payloads))
        finally:
            _shutdown(pool)

    def _initargs(self, context: BackendContext) -> tuple:
        raise NotImplementedError

    def _chunk_fn(self):
        raise NotImplementedError

    def _make_pool(self, context: BackendContext, n_tasks: int):
        return self._context().Pool(
            processes=_pool_size(self.jobs, n_tasks),
            initializer=self._initializer,
            initargs=self._initargs(context),
        )

    def map_chunks(
        self, context: BackendContext, tasks: Sequence[ChunkTask]
    ) -> Iterator[ChunkResult]:
        self._check_available()
        self._check_context(context)
        chunk_fn = self._chunk_fn()
        resilience = context.resilience
        if resilience is None:
            # Historical path: one pool, ordered imap.  terminate+join in
            # all cases (Ctrl-C included) so no child outlives the call.
            pool = self._make_pool(context, len(tasks))
            try:
                yield from pool.imap(chunk_fn, tasks)
            finally:
                _shutdown(pool)
            return
        yield from _resilient_dispatch(
            tasks,
            resilience,
            self.name,
            acquire=lambda: self._make_pool(context, len(tasks)),
            replace=lambda old: (_shutdown(old), self._make_pool(context, len(tasks)))[1],
            release=_shutdown,
            submit=lambda pool, task: pool.apply_async(chunk_fn, (task,)),
        )

    def _check_context(self, context: BackendContext) -> None:
        """Hook for pickle-safety checks; the fork backend needs none."""


class ForkBackend(_PoolBackendBase):
    """A fork pool per call; campaign state inherited copy-on-write."""

    name = "fork"
    start_method = "fork"
    _initializer = staticmethod(_fork_init)

    def _initargs(self, context: BackendContext) -> tuple:
        return (
            context.campaign,
            context.inputs,
            context.power_transform,
            context.power_transform_factory,
            context.compiled_path(),
            context.codec,
        )

    def _chunk_fn(self):
        return _fork_chunk


class SpawnBackend(_PoolBackendBase):
    """A spawn pool per call; campaign state rebuilt from a pickled spec."""

    name = "spawn"
    start_method = "spawn"
    _initializer = staticmethod(_spawn_init)

    def _check_context(self, context: BackendContext) -> None:
        context.assert_picklable(self.name)

    def _initargs(self, context: BackendContext) -> tuple:
        return (
            context.spec(),
            context.inputs,
            context.power_transform,
            context.power_transform_factory,
            context.compiled_path(),
            context.codec,
        )

    def _chunk_fn(self):
        return _spawn_chunk


class PoolBackend(ExecutionBackend):
    """A persistent worker pool reused across campaigns and sweeps.

    Unlike the per-call backends, ``start()`` builds the pool once and
    every subsequent :meth:`map_chunks`/:meth:`map_items` call reuses
    the warm workers: each worker keeps the campaigns it has rebuilt
    (and their compiled schedules) in a cache keyed by the spec's
    structural identity, so repeated campaigns over the same workload —
    a sweep's grid points, a session's scenario batch — compile once per
    worker and then stream pure data.

    A task that raises inside a worker surfaces the original exception
    (with the remote traceback chained) from the mapping call; the pool
    itself stays healthy and subsequent calls keep working.
    """

    name = "pool"

    def __init__(self, jobs: int = 2, start_method: str | None = None):
        self.jobs = max(1, int(jobs))
        if start_method is None:
            start_method = "fork" if fork_available() else "spawn"
        if start_method not in multiprocessing.get_all_start_methods():
            raise BackendUnavailable(
                f"start method '{start_method}' is unavailable on this platform"
            )
        self.start_method = start_method
        self._pool = None
        #: total tasks dispatched over the pool's lifetime (provenance)
        self.tasks_dispatched = 0
        #: watchdog-triggered pool replacements (provenance)
        self.pools_rebuilt = 0

    @property
    def workers(self) -> int:
        return self.jobs

    def start(self) -> "PoolBackend":
        if self._pool is None:
            self._pool = multiprocessing.get_context(self.start_method).Pool(
                processes=self.jobs, initializer=_pool_init
            )
        return self

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def describe(self) -> dict:
        info = super().describe()
        info["persistent"] = True
        info["tasks_dispatched"] = self.tasks_dispatched
        info["pools_rebuilt"] = self.pools_rebuilt
        return info

    def _live_pool(self):
        self.start()
        return self._pool

    def _replace_pool(self):
        """Kill and rebuild the worker pool after a watchdog timeout.

        The backend object itself stays healthy — callers keep using it
        — but the workers (and their warm campaign caches) are replaced
        wholesale, since a hung or SIGKILLed worker cannot be told apart
        from the outside and must not linger.
        """
        self.pools_rebuilt += 1
        self.close()
        return self._live_pool()

    def map_chunks(
        self, context: BackendContext, tasks: Sequence[ChunkTask]
    ) -> Iterator[ChunkResult]:
        context.assert_picklable(self.name)
        spec = context.spec()
        parent_path = context.compiled_path()
        payloads = {
            task.index: (
                spec,
                context.inputs.slice(task.lo, task.hi),
                context.power_transform,
                context.power_transform_factory,
                task,
                parent_path,
                context.codec,
            )
            for task in tasks
        }
        self.tasks_dispatched += len(payloads)
        resilience = context.resilience
        if resilience is None:
            try:
                yield from self._live_pool().imap(_pool_chunk, list(payloads.values()))
            except KeyboardInterrupt:
                # Release the session-owned workers promptly: an
                # interrupted campaign must not leave orphans behind.
                self.close()
                raise
            return
        yield from _resilient_dispatch(
            tasks,
            resilience,
            self.name,
            acquire=self._live_pool,
            replace=lambda _old: self._replace_pool(),
            release=lambda _pool: None,  # persistent: the owner closes it
            submit=lambda pool, task: pool.apply_async(
                _pool_chunk, (payloads[task.index],)
            ),
        )

    def map_items(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        payloads = [(fn, item) for item in items]
        self.tasks_dispatched += len(payloads)
        try:
            return list(self._live_pool().imap(_apply, payloads))
        except KeyboardInterrupt:
            self.close()
            raise


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1
