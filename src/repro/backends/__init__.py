"""Pluggable execution backends for campaigns and sweeps.

The streaming engine, the sweep engine, and the session facade all
execute fan-out work through an :class:`ExecutionBackend`.  Callers pick
one with a *policy* — a backend instance, or one of the names in
:data:`BACKEND_POLICIES`:

======== ==============================================================
policy   meaning
======== ==============================================================
auto     fork where available, else spawn, else serial (with a
         :class:`BackendDegradationWarning`); serial when ``jobs <= 1``
serial   the in-process reference
fork     a fork pool per call (copy-on-write state sharing)
spawn    a spawn pool per call (pickle-safe declarative tasks)
pool     a persistent worker pool, reused until ``close()``
numba    serial with the JIT'd packed-tape evaluator (needs numba)
======== ==============================================================

Every backend is byte-identical to serial for float32 campaigns; see
``docs/backends.md`` for the determinism argument and a decision guide.

``auto`` also honors the process-wide quarantine registry
(:func:`quarantine_backend` / :func:`is_quarantined`): a backend the
resilience layer declared :class:`BackendBroken` is skipped by every
later resolution, and streams fall down the
``pool -> fork -> spawn -> serial`` degradation ladder instead of
failing — loudly, via :class:`BackendDegradationWarning`.  See
``docs/resilience.md``.
"""

from __future__ import annotations

import warnings

from repro.backends import pools as _pools
from repro.backends.base import (
    BackendContext,
    BackendDegradationWarning,
    BackendUnavailable,
    CampaignSpec,
    ChunkResult,
    ChunkTask,
    ExecutionBackend,
    SerialBackend,
    run_chunk_task,
)
from repro.backends.numba_tape import NumbaTapeBackend, numba_available
from repro.backends.pools import (
    ForkBackend,
    PoolBackend,
    SpawnBackend,
    cpu_count,
    fork_available,
)
from repro.backends.resilience import (
    DEGRADATION_LADDER,
    BackendBroken,
    ChunkCorruption,
    FaultReport,
    ResilienceContext,
    RetryPolicy,
    TransientChunkError,
    WatchdogTimeout,
    clear_quarantine,
    is_quarantined,
    quarantine_backend,
    quarantine_info,
)

#: every name ``resolve_backend`` accepts
BACKEND_POLICIES = ("auto", "serial", "fork", "spawn", "pool", "numba")

#: the subset a CLI user can ask for (pool/numba are API-level knobs:
#: pool needs an owning scope, numba an optional dependency)
CLI_BACKEND_CHOICES = ("auto", "serial", "fork", "spawn")


def make_backend(policy: str, jobs: int = 1) -> ExecutionBackend:
    """Construct the named backend (no availability fallback)."""
    if policy == "serial":
        return SerialBackend()
    if policy == "fork":
        return ForkBackend(jobs)
    if policy == "spawn":
        return SpawnBackend(jobs)
    if policy == "pool":
        return PoolBackend(jobs)
    if policy == "numba":
        return NumbaTapeBackend()
    raise ValueError(f"unknown backend policy {policy!r}; expected one of {BACKEND_POLICIES}")


def resolve_backend(
    policy,
    jobs: int = 1,
    *,
    n_tasks: int | None = None,
    context: BackendContext | None = None,
) -> tuple[ExecutionBackend, bool]:
    """Resolve a policy to ``(backend, owned)``.

    ``owned`` tells the caller whether it created the backend (and must
    close it) or was handed a live instance to leave running.  Explicit
    names are strict — asking for ``fork`` on a spawn-only platform
    raises :class:`BackendUnavailable` — while ``auto`` (or ``None``)
    degrades with a :class:`BackendDegradationWarning` when ``jobs > 1``
    cannot actually be honored, instead of silently running serial.
    """
    if isinstance(policy, ExecutionBackend):
        return policy, False
    if policy is None:
        policy = "auto"
    if not isinstance(policy, str):
        raise TypeError(
            f"backend policy must be a string or ExecutionBackend, got {type(policy).__name__}"
        )
    if policy != "auto":
        if policy not in BACKEND_POLICIES:
            raise ValueError(
                f"unknown backend policy {policy!r}; expected one of {BACKEND_POLICIES}"
            )
        backend = make_backend(policy, jobs)
        if isinstance(backend, ForkBackend):
            backend._check_available()
        # Nothing to fan out: spinning up a pool for one worker or one
        # chunk only adds fork/pickle overhead (BENCH_backends.json had
        # fork at jobs=1 around half the serial throughput), and serial
        # is byte-identical by contract.  Availability stays strict —
        # the checks above ran — and 'numba' is excluded because it
        # changes the evaluator, not just the dispatch.
        if policy in ("fork", "spawn", "pool") and (
            jobs <= 1 or (n_tasks is not None and n_tasks <= 1)
        ):
            return SerialBackend(), True
        return backend, True

    # auto: nothing to fan out -> serial, quietly.
    if jobs <= 1 or (n_tasks is not None and n_tasks <= 1):
        return SerialBackend(), True
    if _pools.fork_available() and not is_quarantined("fork"):
        return ForkBackend(jobs), True
    if is_quarantined("fork"):
        reason = f"the 'fork' backend is quarantined ({quarantine_info().get('fork')})"
    else:
        reason = "the 'fork' start method is unavailable on this platform"
    if is_quarantined("spawn"):
        reason = (
            f"{reason}, and the 'spawn' backend is quarantined "
            f"({quarantine_info().get('spawn')})"
        )
    elif context is not None:
        try:
            context.assert_picklable("spawn")
        except BackendUnavailable as error:
            reason = f"{reason}, and the spawn fallback cannot run: {error}"
        else:
            return SpawnBackend(jobs), True
    else:
        return SpawnBackend(jobs), True
    warnings.warn(
        f"jobs={jobs} requested but no parallel backend is usable ({reason}); "
        "running serial",
        BackendDegradationWarning,
        stacklevel=2,
    )
    return SerialBackend(), True


__all__ = [
    "BACKEND_POLICIES",
    "CLI_BACKEND_CHOICES",
    "DEGRADATION_LADDER",
    "BackendBroken",
    "BackendContext",
    "BackendDegradationWarning",
    "BackendUnavailable",
    "CampaignSpec",
    "ChunkCorruption",
    "ChunkResult",
    "ChunkTask",
    "ExecutionBackend",
    "FaultReport",
    "ForkBackend",
    "NumbaTapeBackend",
    "PoolBackend",
    "ResilienceContext",
    "RetryPolicy",
    "SerialBackend",
    "SpawnBackend",
    "TransientChunkError",
    "WatchdogTimeout",
    "clear_quarantine",
    "cpu_count",
    "fork_available",
    "is_quarantined",
    "make_backend",
    "numba_available",
    "quarantine_backend",
    "quarantine_info",
    "resolve_backend",
    "run_chunk_task",
]
