"""The Figure-4 environment: a loaded Linux system around the victim.

The paper's realistic scenario runs AES as an unprivileged userspace
process on Ubuntu 16.04 with a GUI, an Apache 2.4.18 webserver serving
1000 HTTPerf requests per second, both Cortex-A7 cores at full load, no
CPU affinity and no elevated priority.  Relative to bare metal this adds
two effects, both modelled here:

* broadband additive power noise from the second core and the other
  processes sharing the SoC's supply rail (an autocorrelated random
  activity process, scaled to dominate the victim's signal); and
* occasional preemption of the victim: a preempted execution contributes
  unrelated activity instead of the AES window, diluted by the 16-fold
  trace averaging.
"""

from repro.os_sim.environment import Environment, bare_metal, loaded_linux
from repro.os_sim.scheduler import PreemptionModel
from repro.os_sim.workload import BackgroundWorkload

__all__ = [
    "BackgroundWorkload",
    "Environment",
    "PreemptionModel",
    "bare_metal",
    "loaded_linux",
]
