"""Preemption of the victim process by the OS scheduler.

At 120 MHz a scheduler tick is on the order of a million cycles while
the measured AES window is a few thousand, so most recorded executions
run undisturbed; occasionally one is preempted mid-window and the
oscilloscope averages in a window of unrelated activity.  The paper
overcomes exactly this with per-input averaging of 16 executions (as in
the 1 GHz attack of Balasch et al. that it builds on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PreemptionModel:
    """Probability and effect of a mid-window preemption."""

    #: probability that one *execution* (not averaged trace) is preempted
    probability_per_execution: float = 0.02
    #: power level of the foreign activity replacing the victim's window
    foreign_activity_power: float = 45.0
    foreign_activity_sigma: float = 12.0

    def corruption_mask(
        self, n_traces: int, n_averages: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Fraction of each trace's averaged executions that were preempted.

        Returns ``float64[n_traces]`` in [0, 1]: a preempted execution
        replaces its contribution to the 16-average with foreign power.
        """
        hits = rng.binomial(n_averages, self.probability_per_execution, size=n_traces)
        return hits / float(n_averages)

    def apply(
        self,
        power: np.ndarray,
        n_averages: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Mix preempted executions into the averaged power matrix."""
        n_traces, n_samples = power.shape
        fraction = self.corruption_mask(n_traces, n_averages, rng)
        foreign = rng.normal(
            self.foreign_activity_power,
            self.foreign_activity_sigma,
            size=(n_traces, n_samples),
        )
        mixed = power * (1.0 - fraction[:, None]) + foreign * fraction[:, None]
        return mixed
