"""Environment presets tying workload + scheduler into the acquisition.

An :class:`Environment` produces the ``extra_noise`` matrix a
:class:`repro.power.TraceCampaign` mixes into the victim's power before
the oscilloscope chain, plus environment-appropriate scope settings
(trigger jitter grows on a busy system; averaging stays at the paper's
16 executions per stored trace).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.os_sim.scheduler import PreemptionModel
from repro.os_sim.workload import BackgroundWorkload, apache_full_load, idle_desktop
from repro.power.scope import ScopeConfig


@dataclass
class Environment:
    """A measurement environment around the victim process."""

    name: str
    workload: BackgroundWorkload | None = None
    preemption: PreemptionModel | None = None
    trigger_jitter_samples: int = 0
    n_averages: int = 16
    seed: int = 0xB007

    def scope_config(self, base: ScopeConfig | None = None) -> ScopeConfig:
        base = base if base is not None else ScopeConfig()
        return replace(
            base,
            n_averages=self.n_averages,
            jitter_samples=max(base.jitter_samples, self.trigger_jitter_samples),
        )

    def reseeded(self, stream: int) -> "Environment":
        """A copy whose noise realization is decorrelated per ``stream``.

        Used by chunked acquisition: ``transform`` draws from a fixed
        seed, so feeding it successive chunks would repeat the same
        foreign-activity pattern; stream ``i`` of a campaign uses
        ``reseeded(i)`` (stream 0 keeps the seed, preserving the
        monolithic realization).
        """
        from repro.power.acquisition import derive_seed

        return replace(self, seed=derive_seed(self.seed, stream))

    def transform(self, power: np.ndarray) -> np.ndarray:
        """The averaged power as recorded in this environment.

        Each stored trace averages ``n_averages`` executions: preempted
        executions replace their share of the victim's window with
        foreign activity, and the background workload's power (averaged
        over the executions, so its variance shrinks by ``1/n``) adds on
        top.
        """
        rng = np.random.default_rng(self.seed)
        if self.workload is None and self.preemption is None:
            return power
        n_traces, n_samples = power.shape
        out = power.astype(np.float64)
        if self.preemption is not None:
            fraction = self.preemption.corruption_mask(n_traces, self.n_averages, rng)
            foreign = rng.normal(
                self.preemption.foreign_activity_power,
                self.preemption.foreign_activity_sigma,
                size=(n_traces, n_samples),
            )
            out = out * (1.0 - fraction[:, None]) + foreign * fraction[:, None]
        if self.workload is not None:
            # Emulate the n-execution average of the AR(1) background
            # with a few draws rescaled to the same residual variance.
            draws = min(self.n_averages, 4)
            total = np.zeros((n_traces, n_samples))
            for _ in range(draws):
                total += self.workload.sample(n_traces, n_samples, rng)
            total /= draws
            residual_scale = np.sqrt(draws / self.n_averages)
            centered = total - self.workload.mean_power
            out += centered * residual_scale + self.workload.mean_power
        return out


def bare_metal() -> Environment:
    """The Section-4/Figure-3 setup: u-boot, clock-gated peripherals."""
    return Environment(name="bare-metal", workload=None, preemption=None)


def idle_linux() -> Environment:
    """Ubuntu with the desktop idle (intermediate scenario).

    The GPIO trigger stays sample-accurate (the CPU clock is locked at
    120 MHz as in the paper); timing disruption is carried by the
    preemption model, not by trigger jitter.
    """
    return Environment(
        name="idle-linux",
        workload=idle_desktop(),
        preemption=PreemptionModel(probability_per_execution=0.005),
    )


def loaded_linux() -> Environment:
    """The Figure-4 environment: Apache at 1000 req/s, both cores busy."""
    return Environment(
        name="loaded-linux",
        workload=apache_full_load(),
        preemption=PreemptionModel(probability_per_execution=0.03),
    )
