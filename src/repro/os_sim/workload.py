"""Background-activity power: the second core and the webserver.

The other core executes an unrelated instruction mix; its switching
power adds to the shared supply-rail measurement.  A first-order
autoregressive process with tunable amplitude captures the two relevant
statistics: broadband power with short-range correlation (consecutive
samples share pipeline state) and no correlation whatsoever with the
victim's data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BackgroundWorkload:
    """AR(1) supply-rail noise from co-running activity."""

    #: standard deviation of the added power, in leakage units
    amplitude: float = 20.0
    #: one-sample autocorrelation (pipeline state persistence)
    correlation: float = 0.6
    #: mean activity offset (full-load baseline draw)
    mean_power: float = 30.0

    def sample(self, n_traces: int, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw the background power for a campaign: [n_traces, n_samples]."""
        rho = self.correlation
        innovation_sigma = self.amplitude * np.sqrt(max(1.0 - rho * rho, 1e-9))
        noise = rng.normal(0.0, innovation_sigma, size=(n_traces, n_samples))
        out = np.empty_like(noise)
        out[:, 0] = rng.normal(0.0, self.amplitude, size=n_traces)
        for s in range(1, n_samples):
            out[:, s] = rho * out[:, s - 1] + noise[:, s]
        return out + self.mean_power


def apache_full_load() -> BackgroundWorkload:
    """Both cores saturated by Apache + HTTPerf at 1000 req/s (paper).

    The amplitude is calibrated jointly with the victim's leakage
    profile so that the paper's operational result holds: the matched
    consecutive-store model still succeeds from 100 averaged traces
    while the correlation visibly drops versus bare metal.
    """
    return BackgroundWorkload(amplitude=6.0, correlation=0.7, mean_power=40.0)


def idle_desktop() -> BackgroundWorkload:
    """An idle Linux desktop: light background services only."""
    return BackgroundWorkload(amplitude=2.5, correlation=0.5, mean_power=8.0)
