"""A sparse, page-backed, little-endian byte-addressable memory.

The simulator's data memory.  Pages are allocated lazily so programs can
scatter code, tables and stacks across the address space without
committing gigabytes.  All multi-byte accesses are little-endian, matching
the ARM configuration of the paper's Allwinner A20 target.
"""

from __future__ import annotations

WORD_MASK = 0xFFFFFFFF

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS
_PAGE_MASK = _PAGE_SIZE - 1


class Memory:
    """Sparse byte-addressable memory with lazy page allocation."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, address: int) -> bytearray:
        page_no = address >> _PAGE_BITS
        page = self._pages.get(page_no)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[page_no] = page
        return page

    # ------------------------------------------------------------------
    # Byte granularity
    # ------------------------------------------------------------------

    def read_byte(self, address: int) -> int:
        address &= WORD_MASK
        return self._page(address)[address & _PAGE_MASK]

    def write_byte(self, address: int, value: int) -> None:
        address &= WORD_MASK
        self._page(address)[address & _PAGE_MASK] = value & 0xFF

    # ------------------------------------------------------------------
    # Multi-byte granularity (little endian; may straddle pages)
    # ------------------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        return bytes(self.read_byte(address + i) for i in range(length))

    def write_bytes(self, address: int, data: bytes) -> None:
        for i, value in enumerate(data):
            self.write_byte(address + i, value)

    def read_half(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 2), "little")

    def write_half(self, address: int, value: int) -> None:
        self.write_bytes(address, (value & 0xFFFF).to_bytes(2, "little"))

    def read_word(self, address: int) -> int:
        address &= WORD_MASK
        offset = address & _PAGE_MASK
        if offset <= _PAGE_SIZE - 4:
            page = self._page(address)
            return int.from_bytes(page[offset : offset + 4], "little")
        return int.from_bytes(self.read_bytes(address, 4), "little")

    def write_word(self, address: int, value: int) -> None:
        address &= WORD_MASK
        offset = address & _PAGE_MASK
        data = (value & WORD_MASK).to_bytes(4, "little")
        if offset <= _PAGE_SIZE - 4:
            self._page(address)[offset : offset + 4] = data
        else:
            self.write_bytes(address, data)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def load_blocks(self, blocks) -> None:
        """Load an iterable of objects with ``address``/``data`` attributes."""
        for block in blocks:
            self.write_bytes(block.address, bytes(block.data))

    def snapshot(self) -> "Memory":
        """Deep copy, used to reset state between trace acquisitions."""
        clone = Memory()
        clone._pages = {page_no: bytearray(page) for page_no, page in self._pages.items()}
        return clone

    @property
    def allocated_bytes(self) -> int:
        return len(self._pages) * _PAGE_SIZE
