"""Set-associative cache model with LRU replacement and a two-level hierarchy.

The Allwinner A20 target of the paper has two cache levels.  Section 3.2
explains that the benchmarks are looped until the caches are warm so that
execution time is deterministic; the pipeline model therefore assumes warm
caches by default.  This module exists to *verify* that assumption (the
CPI harness can check that a warmed cache produces no misses on the
benchmark working set) and to model cold-start effects when a user asks
for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 32
    ways: int = 4
    hit_latency: int = 1
    name: str = "L1"

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError("cache size must be a multiple of line_bytes * ways")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


#: Cortex-A7 L1 data cache (32 KiB, 4-way, 64 B lines per the TRM; we keep
#: 32 B lines as a conservative default usable for both L1I and L1D).
CORTEX_A7_L1 = CacheConfig(size_bytes=32 * 1024, line_bytes=64, ways=4, hit_latency=1, name="L1D")

#: Allwinner A20 shared L2 (256 KiB, 8-way).
CORTEX_A7_L2 = CacheConfig(
    size_bytes=256 * 1024, line_bytes=64, ways=8, hit_latency=8, name="L2"
)


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """One set-associative, write-allocate, LRU cache level.

    Only tags are modelled (data lives in :class:`repro.mem.Memory`); the
    cache's job here is timing and warm-up state, not storage.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._line_shift = config.line_bytes.bit_length() - 1
        # Per-set list of tags in LRU order (most recent last).
        self._sets: list[list[int]] = [[] for _ in range(config.n_sets)]

    def _locate(self, address: int) -> tuple[list[int], int]:
        line = address >> self._line_shift
        return self._sets[line % self.config.n_sets], line

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit and updates LRU state."""
        tags, tag = self._locate(address)
        if tag in tags:
            tags.remove(tag)
            tags.append(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        tags.append(tag)
        if len(tags) > self.config.ways:
            tags.pop(0)
        return False

    def contains(self, address: int) -> bool:
        """Non-mutating lookup (no LRU update, no stats)."""
        tags, tag = self._locate(address)
        return tag in tags

    def warm(self, address: int, length: int) -> None:
        """Pre-load an address range, as the paper's warm-up loop does."""
        line = self.config.line_bytes
        start = address & ~(line - 1)
        for addr in range(start, address + length, line):
            tags, tag = self._locate(addr)
            if tag in tags:
                tags.remove(tag)
            tags.append(tag)
            if len(tags) > self.config.ways:
                tags.pop(0)

    def flush(self) -> None:
        for tags in self._sets:
            tags.clear()
        self.stats = CacheStats()


@dataclass
class CacheHierarchy:
    """L1 + L2 with miss propagation; returns total access latency."""

    l1: Cache = field(default_factory=lambda: Cache(CORTEX_A7_L1))
    l2: Cache = field(default_factory=lambda: Cache(CORTEX_A7_L2))
    memory_latency: int = 60

    def access(self, address: int) -> int:
        """Access latency in cycles for ``address``."""
        if self.l1.access(address):
            return self.l1.config.hit_latency
        if self.l2.access(address):
            return self.l1.config.hit_latency + self.l2.config.hit_latency
        return self.l1.config.hit_latency + self.l2.config.hit_latency + self.memory_latency

    def warm(self, address: int, length: int) -> None:
        self.l1.warm(address, length)
        self.l2.warm(address, length)

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
