"""Memory subsystem: flat sparse memory and a two-level cache model."""

from repro.mem.cache import Cache, CacheConfig, CacheHierarchy, CacheStats
from repro.mem.memory import Memory

__all__ = ["Cache", "CacheConfig", "CacheHierarchy", "CacheStats", "Memory"]
