"""Text rendering for experiment outputs (tables and line plots)."""

from __future__ import annotations

import numpy as np


def render_check_matrix(
    cells: dict[tuple[str, str], bool],
    rows: tuple[str, ...],
    cols: tuple[str, ...],
    title: str = "",
) -> str:
    """Render a ✓/✗ matrix like the paper's Table 1."""
    col_width = max(len(c) for c in cols) + 2
    row_width = max(len(r) for r in rows) + 2
    lines = []
    if title:
        lines.append(title)
    header = " " * row_width + "".join(c.ljust(col_width) for c in cols)
    lines.append(header)
    for row in rows:
        marks = []
        for col in cols:
            mark = "ok" if cells[(row, col)] else "--"
            marks.append(mark.ljust(col_width))
        lines.append(row.ljust(row_width) + "".join(marks))
    return "\n".join(lines)


def render_table(
    headers: list[str], rows: list[list[str]], title: str = ""
) -> str:
    """Simple aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_plot(
    series: np.ndarray,
    width: int = 100,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    markers: dict[int, str] | None = None,
) -> str:
    """Plot a 1-D series as ASCII art (used for correlation-vs-time).

    ``markers`` maps sample indices to single-character annotations drawn
    on a dedicated line (primitive boundaries in the Figure-3 plot).
    """
    values = np.asarray(series, dtype=np.float64)
    if values.size == 0:
        return "(empty series)"
    n = values.size
    bucket = max(1, n // width)
    buckets = [values[i : i + bucket] for i in range(0, n, bucket)]
    condensed = np.array([np.max(np.abs(b)) * np.sign(b[np.argmax(np.abs(b))]) for b in buckets])
    lo, hi = float(np.min(condensed)), float(np.max(condensed))
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * len(condensed) for _ in range(height)]
    for x, value in enumerate(condensed):
        y = int(round((value - lo) / (hi - lo) * (height - 1)))
        grid[height - 1 - y][x] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"max={hi:+.4f}")
    lines.extend("".join(row) for row in grid)
    lines.append(f"min={lo:+.4f}")
    if markers:
        marker_line = [" "] * len(condensed)
        for sample, char in markers.items():
            x = min(len(condensed) - 1, sample // bucket)
            marker_line[x] = char
        lines.append("".join(marker_line))
    if x_label:
        lines.append(x_label)
    return "\n".join(lines)


def samples_to_microseconds(sample: int, samples_per_cycle: int, clock_hz: float = 120e6) -> float:
    """Convert a trace sample index into microseconds of execution."""
    return sample / samples_per_cycle / clock_hz * 1e6
