"""Table 1: instruction pairs executed in dual-issue by the Cortex-A7.

The experiment reruns the paper's §3.2 protocol end to end: for every
ordered pair of instruction classes, a 200-repetition microbenchmark
(hazard-free, plus a RAW-hazard control) is scheduled on the pipeline
model, timed through the GPIO/oscilloscope model, baseline-subtracted,
and classified as dual-issued when the hazard-free CPI sustains ~0.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.reporting import render_check_matrix, render_table
from repro.uarch.config import PipelineConfig
from repro.uarch.cpi import TABLE1_COLUMNS, TABLE1_ORDER, CpiMatrix, measure_matrix

#: The paper's Table 1 (rows = older instruction, columns = younger).
PAPER_TABLE1: dict[tuple[str, str], bool] = {}
_PAPER_ROWS = {
    "mov": "1110110",
    "ALU": "1010010",
    "ALU w/ imm": "1110111",
    "branch": "1111101",
    "ld/st": "1010010",
    "mul": "0000010",
    "shifts": "0010010",
}
for _row, _bits in _PAPER_ROWS.items():
    for _col, _bit in zip(TABLE1_COLUMNS, _bits):
        PAPER_TABLE1[(_row, _col)] = _bit == "1"


@dataclass
class Table1Result:
    """Measured matrix, full CPI data and the paper comparison."""

    matrix: CpiMatrix
    measured: dict[tuple[str, str], bool]
    mismatches: list[tuple[str, str]] = field(default_factory=list)

    @property
    def matches_paper(self) -> bool:
        return not self.mismatches

    def to_json(self) -> dict:
        return {
            "nop_cpi": round(self.matrix.nop_cpi, 4),
            "mismatches": [list(pair) for pair in self.mismatches],
            "cells": [
                {
                    "older": older,
                    "younger": younger,
                    "cpi_free": round(measurement.cpi, 4),
                    "cpi_hazard": (
                        round(self.matrix.hazard[(older, younger)].cpi, 4)
                        if (older, younger) in self.matrix.hazard
                        else None
                    ),
                    "dual_measured": measurement.dual_issued,
                    "dual_paper": PAPER_TABLE1[(older, younger)],
                }
                for (older, younger), measurement in sorted(self.matrix.free.items())
            ],
        }

    def artifacts(self) -> dict:
        import numpy as np

        cpi = np.array(
            [
                [self.matrix.free[(older, younger)].cpi for younger in TABLE1_COLUMNS]
                for older in TABLE1_ORDER
            ]
        )
        return {"cpi_free": cpi}

    def render(self) -> str:
        parts = [
            render_check_matrix(
                self.measured,
                TABLE1_ORDER,
                TABLE1_COLUMNS,
                title="Table 1 (reproduced): dual-issued instruction pairs "
                "(rows: older, cols: younger)",
            )
        ]
        rows = []
        for (older, younger), measurement in sorted(self.matrix.free.items()):
            hazard = self.matrix.hazard.get((older, younger))
            rows.append(
                [
                    older,
                    younger,
                    f"{measurement.cpi:.2f}",
                    f"{hazard.cpi:.2f}" if hazard else "-",
                    "yes" if measurement.dual_issued else "no",
                    "yes" if PAPER_TABLE1[(older, younger)] else "no",
                ]
            )
        parts.append(
            render_table(
                ["older", "younger", "CPI free", "CPI hazard", "dual (measured)", "dual (paper)"],
                rows,
                title="\nCPI measurements",
            )
        )
        parts.append(f"\nnop CPI: {self.matrix.nop_cpi:.2f} (paper: nops are never dual-issued)")
        verdict = "MATCH" if self.matches_paper else f"MISMATCHES: {self.mismatches}"
        parts.append(f"paper comparison: {verdict} ({49 - len(self.mismatches)}/49 cells)")
        return "\n".join(parts)


def run_table1(
    config: PipelineConfig | None = None,
    reps: int = 200,
    pad_nops: int = 100,
    with_hazards: bool = True,
) -> Table1Result:
    """Measure the full matrix and compare it to the paper's Table 1."""
    matrix = measure_matrix(
        config=config, reps=reps, pad_nops=pad_nops, with_hazards=with_hazards
    )
    measured = matrix.as_bool_matrix()
    mismatches = [
        key for key, expected in PAPER_TABLE1.items() if measured.get(key) is not expected
    ]
    return Table1Result(matrix=matrix, measured=measured, mismatches=sorted(mismatches))


def _scenario_runner(request):
    return run_table1(reps=request.reps, config=request.config)


def _register_scenario():
    from repro.api.capabilities import Capability
    from repro.campaigns.registry import Scenario, register

    register(
        Scenario(
            name="table1",
            title="Table 1: dual-issue pairing matrix of the Cortex-A7",
            description=(
                "49-cell CPI micro-benchmark matrix classifying which "
                "instruction pairs dual-issue."
            ),
            runner=_scenario_runner,
            default_traces=None,
            capabilities=frozenset({Capability.REPS, Capability.PIPELINE_CONFIG}),
            tags=("cpi",),
        )
    )


_register_scenario()
