"""Success-rate curves: attack quality as a function of trace budget.

Standard SCA evaluation methodology applied to both of the paper's
attacks: for increasing trace counts, repeated random sub-samplings of a
large campaign measure the probability that the attack ranks the true
key first.  This quantifies statements like "the attack succeeds with
~100 averaged traces" and shows where the microarchitecture-aware model
of Figure 4 beats the coarse model of Figure 3 per trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaigns.engine import StreamingCampaign
from repro.campaigns.registry import RunOptions, Scenario, register
from repro.crypto.aes_asm import LAYOUT, round1_only_program
from repro.experiments.reporting import render_table
from repro.power.acquisition import random_inputs
from repro.power.scope import ScopeConfig
from repro.sca.cpa import cpa_attack
from repro.sca.distinguish import success_rate
from repro.sca.models import hd_consecutive_stores_model, hw_sbox_model


@dataclass
class SuccessCurves:
    """Success rate vs trace count for both attack models."""

    hw_model: dict[int, float]
    hd_model: dict[int, float]
    n_repeats: int

    def render(self) -> str:
        counts = sorted(set(self.hw_model) | set(self.hd_model))
        rows = [
            [
                str(count),
                f"{self.hw_model.get(count, float('nan')):.2f}",
                f"{self.hd_model.get(count, float('nan')):.2f}",
            ]
            for count in counts
        ]
        return render_table(
            ["traces", "HW(SubBytes) (Fig.3 model)", "HD(stores) (Fig.4 model)"],
            rows,
            title=f"first-order success rate ({self.n_repeats} resamplings per point)",
        )

    def crossover_holds(self) -> bool:
        """The matched HD model should dominate at every shared budget."""
        shared = set(self.hw_model) & set(self.hd_model)
        return all(self.hd_model[c] >= self.hw_model[c] - 0.101 for c in shared)


def run_success_curves(
    trace_counts: tuple[int, ...] = (50, 100, 200, 400, 800),
    n_campaign: int = 1200,
    n_repeats: int = 12,
    byte_index: int = 0,
    key: bytes = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"),
    noise_sigma: float = 40.0,
    seed: int = 0x5CC5,
) -> SuccessCurves:
    """Acquire one large campaign and sub-sample both attacks.

    The noise level sits between the Figure-3 and Figure-4 regimes so
    both models have a visible ramp over the tested budgets.
    """
    program = round1_only_program(key)
    inputs = random_inputs(n_campaign, mem_blocks={LAYOUT.state: 16}, seed=seed)
    # The repeated random sub-samplings need the whole matrix resident,
    # so this scenario acquires monolithically through the engine (and
    # benefits from its schedule cache), rather than streaming.
    engine = StreamingCampaign(
        program,
        scope=ScopeConfig(noise_sigma=noise_sigma, n_averages=16),
        entry="aes_round1",
        seed=seed ^ 0xAAAA,
    )
    trace_set = engine.acquire(inputs)
    plaintexts = inputs.mem_bytes[LAYOUT.state]
    traces = trace_set.traces

    poi = trace_set.leakage.sample_positions("align_store")
    poi = poi[(poi >= 0) & (poi < traces.shape[1])]
    store_traces = traces[:, poi] if poi.size else traces

    def hw_attack(indices: np.ndarray) -> int:
        result = cpa_attack(
            traces[indices],
            lambda g: hw_sbox_model(plaintexts[indices], byte_index, g),
        )
        return result.best_guess

    known = key[byte_index]

    def hd_attack(indices: np.ndarray) -> int:
        result = cpa_attack(
            store_traces[indices],
            lambda g: hd_consecutive_stores_model(
                plaintexts[indices], byte_index, (known, g)
            ),
        )
        return result.best_guess

    hw_rates = success_rate(
        hw_attack, n_campaign, key[byte_index], list(trace_counts), n_repeats, seed=seed
    )
    hd_rates = success_rate(
        hd_attack, n_campaign, key[byte_index + 1], list(trace_counts), n_repeats, seed=seed
    )
    return SuccessCurves(hw_model=hw_rates, hd_model=hd_rates, n_repeats=n_repeats)


def _scenario_runner(options: RunOptions) -> SuccessCurves:
    kwargs = {} if options.seed is None else {"seed": options.seed}
    if options.n_traces is not None:
        kwargs["n_campaign"] = options.n_traces
    return run_success_curves(**kwargs)


SCENARIO = register(
    Scenario(
        name="success-curves",
        title="Success-rate curves: attack quality vs trace budget",
        description=(
            "Sub-sampled success rates of the Figure-3 and Figure-4 models "
            "over increasing trace budgets."
        ),
        runner=_scenario_runner,
        default_traces=1200,
        supports_chunking=False,
        supports_jobs=False,
        tags=("cpa", "evaluation"),
    )
)
