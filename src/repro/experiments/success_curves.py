"""Success-rate curves: attack quality as a function of trace budget.

Standard SCA evaluation methodology applied to both of the paper's
attacks: for increasing trace counts, repeated random resamplings of a
large campaign measure the probability that the attack ranks the true
key first.  This quantifies statements like "the attack succeeds with
~100 averaged traces" and shows where the microarchitecture-aware model
of Figure 4 beats the coarse model of Figure 3 per trace.

The evaluation is prefix-incremental: each resampling permutes the
campaign once, accumulates cumulative CPA cross-moments in a single
pass, and snapshots the attack outcome at every budget
(:func:`repro.sca.cpa.cpa_attack_curve`) — one accumulation per repeat
instead of one from-scratch CPA per (repeat, budget).  The
``method="recompute"`` path runs the identical resampling with
from-scratch attacks per budget; it produces *identical* success rates
and exists as the equivalence reference and the benchmark baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaigns.engine import StreamingCampaign
from repro.api.capabilities import Capability
from repro.api.request import RunRequest
from repro.campaigns.registry import Scenario, register
from repro.crypto.aes_asm import LAYOUT, round1_only_program
from repro.experiments.reporting import render_table
from repro.power.acquisition import random_inputs
from repro.power.scope import ScopeConfig
from repro.sca.cpa import cpa_attack, cpa_attack_curve
from repro.sca.distinguish import success_rate, success_rate_curve
from repro.sca.models import hd_consecutive_stores_model, hw_sbox_model


@dataclass
class SuccessCurves:
    """Success rate vs trace count for both attack models."""

    hw_model: dict[int, float]
    hd_model: dict[int, float]
    n_repeats: int

    @property
    def matches_paper(self) -> bool:
        # The paper's qualitative claim: the matched HD(stores) model
        # dominates the coarse HW model at every shared trace budget.
        return self.crossover_holds()

    def to_json(self) -> dict:
        return {
            "n_repeats": self.n_repeats,
            "hw_model": {str(count): rate for count, rate in sorted(self.hw_model.items())},
            "hd_model": {str(count): rate for count, rate in sorted(self.hd_model.items())},
            "crossover_holds": self.crossover_holds(),
        }

    def artifacts(self) -> dict:
        counts = sorted(set(self.hw_model) | set(self.hd_model))
        return {
            "budgets": np.array(counts),
            "hw_success": np.array([self.hw_model.get(c, np.nan) for c in counts]),
            "hd_success": np.array([self.hd_model.get(c, np.nan) for c in counts]),
        }

    def render(self) -> str:
        counts = sorted(set(self.hw_model) | set(self.hd_model))
        rows = [
            [
                str(count),
                f"{self.hw_model.get(count, float('nan')):.2f}",
                f"{self.hd_model.get(count, float('nan')):.2f}",
            ]
            for count in counts
        ]
        return render_table(
            ["traces", "HW(SubBytes) (Fig.3 model)", "HD(stores) (Fig.4 model)"],
            rows,
            title=f"first-order success rate ({self.n_repeats} resamplings per point)",
        )

    def crossover_holds(self) -> bool:
        """The matched HD model should dominate at every shared budget."""
        shared = set(self.hw_model) & set(self.hd_model)
        return all(self.hd_model[c] >= self.hw_model[c] - 0.101 for c in shared)


def _model_matrices(
    plaintexts: np.ndarray, byte_index: int, known_key_byte: int
) -> tuple[np.ndarray, np.ndarray]:
    """Both attacks' full ``[n_traces, 256]`` model matrices.

    A model column depends only on the plaintexts, never on the resampled
    subset, so the matrices are built once per campaign and merely
    row-permuted per repeat.
    """
    hw = np.stack(
        [hw_sbox_model(plaintexts, byte_index, g) for g in range(256)], axis=1
    ).astype(np.float64)
    hd = np.stack(
        [
            hd_consecutive_stores_model(plaintexts, byte_index, (known_key_byte, g))
            for g in range(256)
        ],
        axis=1,
    ).astype(np.float64)
    return hw, hd


def run_success_curves(
    trace_counts: tuple[int, ...] = (50, 100, 200, 400, 800),
    n_campaign: int = 1200,
    n_repeats: int = 12,
    byte_index: int = 0,
    key: bytes = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"),
    noise_sigma: float = 40.0,
    seed: int = 0x5CC5,
    method: str = "snapshot",
    precision: str | None = None,
) -> SuccessCurves:
    """Acquire one large campaign and resample both attacks.

    The noise level sits between the Figure-3 and Figure-4 regimes so
    both models have a visible ramp over the tested budgets.

    ``method="snapshot"`` (default) evaluates every budget from one
    cumulative pass per resampling; ``method="recompute"`` runs a
    from-scratch CPA per budget over the *same* prefix subsets —
    identical rates, recompute-per-budget cost (the equivalence
    reference); ``method="legacy"`` is the seed implementation kept
    verbatim as the benchmark baseline: independent random subsets per
    (budget, repeat), the 256-guess model stack rebuilt inside every
    attack.
    """
    if method not in ("snapshot", "recompute", "legacy"):
        raise ValueError(f"unknown method {method!r}")
    program = round1_only_program(key)
    inputs = random_inputs(n_campaign, mem_blocks={LAYOUT.state: 16}, seed=seed)
    # The repeated resamplings need the whole matrix resident, so this
    # scenario acquires monolithically through the engine (and benefits
    # from its schedule cache), rather than streaming.
    engine = StreamingCampaign(
        program,
        scope=ScopeConfig(
            noise_sigma=noise_sigma,
            n_averages=16,
            precision=precision if precision is not None else "float64-exact",
        ),
        entry="aes_round1",
        seed=seed ^ 0xAAAA,
    )
    trace_set = engine.acquire(inputs)
    plaintexts = inputs.mem_bytes[LAYOUT.state]
    traces = trace_set.traces

    poi = trace_set.leakage.sample_positions("align_store")
    poi = poi[(poi >= 0) & (poi < traces.shape[1])]
    store_traces = traces[:, poi] if poi.size else traces

    known = key[byte_index]
    budgets = sorted({min(int(c), n_campaign) for c in trace_counts})

    if method == "legacy":
        # The seed implementation, verbatim: independent subsets per
        # (budget, repeat), a full CPA — 256-model stack included —
        # rebuilt from scratch inside every attack.
        def hw_attack(indices: np.ndarray) -> int:
            result = cpa_attack(
                traces[indices],
                lambda g: hw_sbox_model(plaintexts[indices], byte_index, g),
            )
            return result.best_guess

        def hd_attack(indices: np.ndarray) -> int:
            result = cpa_attack(
                store_traces[indices],
                lambda g: hd_consecutive_stores_model(
                    plaintexts[indices], byte_index, (known, g)
                ),
            )
            return result.best_guess

        hw_rates = success_rate(
            hw_attack, n_campaign, key[byte_index], budgets, n_repeats, seed=seed
        )
        hd_rates = success_rate(
            hd_attack, n_campaign, key[byte_index + 1], budgets, n_repeats, seed=seed
        )
        return SuccessCurves(hw_model=hw_rates, hd_model=hd_rates, n_repeats=n_repeats)

    hw_models, hd_models = _model_matrices(plaintexts, byte_index, known)
    curve_dtype = np.float32 if engine.scope_config.precision == "float32" else np.float64

    def curve_fn(trace_matrix: np.ndarray, models: np.ndarray):
        if method == "snapshot":

            def attack_curve(order: np.ndarray) -> np.ndarray:
                return cpa_attack_curve(
                    trace_matrix[order], models[order], budgets, dtype=curve_dtype
                ).best_guesses

        else:

            def attack_curve(order: np.ndarray) -> np.ndarray:
                return np.array(
                    [
                        cpa_attack(
                            trace_matrix[order[:budget]], models[order[:budget]]
                        ).best_guess
                        for budget in budgets
                    ]
                )

        return attack_curve

    hw_rates = success_rate_curve(
        curve_fn(traces, hw_models),
        n_campaign,
        key[byte_index],
        budgets,
        n_repeats,
        seed=seed,
    )
    hd_rates = success_rate_curve(
        curve_fn(store_traces, hd_models),
        n_campaign,
        key[byte_index + 1],
        budgets,
        n_repeats,
        seed=seed,
    )
    return SuccessCurves(hw_model=hw_rates, hd_model=hd_rates, n_repeats=n_repeats)


def _scenario_runner(request: RunRequest) -> SuccessCurves:
    kwargs = {} if request.seed is None else {"seed": request.seed}
    if request.n_traces is not None:
        kwargs["n_campaign"] = request.n_traces
    if request.precision is not None:
        kwargs["precision"] = request.precision
    return run_success_curves(**kwargs)


SCENARIO = register(
    Scenario(
        name="success-curves",
        title="Success-rate curves: attack quality vs trace budget",
        description=(
            "Prefix-resampled success rates of the Figure-3 and Figure-4 "
            "models over increasing trace budgets (one cumulative CPA pass "
            "per resampling, snapshotted at every budget)."
        ),
        runner=_scenario_runner,
        default_traces=1200,
        capabilities=frozenset(
            {Capability.TRACES, Capability.SEED, Capability.PRECISION}
        ),
        tags=("cpa", "evaluation"),
    )
)
