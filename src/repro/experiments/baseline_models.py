"""Instruction-level vs microarchitecture-aware leakage prediction.

The experiment behind the paper's core argument: grey-box per-instruction
models (the state of the art for scalar microcontrollers, [16, 19]) make
two characteristic errors on a superscalar core.  Both are measured,
not asserted:

* **False positive** — two *adjacent* register-register/immediate ALU
  instructions: the instruction-level model predicts their operands
  interact (HD between consecutive instructions), but the A7 dual-issues
  them onto separate slot buses, and the measured correlation is null.
* **False negative** — two instructions with an unrelated instruction
  between them: the instruction-level model sees no adjacency, but the
  middle instruction dual-issues with the first, making the outer two
  operands collide on the slot-0 bus; the measured correlation is strong.

The microarchitecture-aware auditor gets both cases right; agreement is
checked against the synthesized traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.audit.auditor import MicroarchAuditor
from repro.campaigns.accumulators import OnlineCorrAccumulator
from repro.campaigns.engine import StreamingCampaign
from repro.api.capabilities import Capability
from repro.api.request import RunRequest
from repro.campaigns.registry import Scenario, register
from repro.isa.parser import assemble
from repro.isa.registers import Reg
from repro.isa.values import ValueKind
from repro.power.acquisition import BatchInputs
from repro.power.hamming import hamming_distance
from repro.power.isa_level import IsaLevelModel
from repro.power.scope import ScopeConfig
from repro.sca.stats import pearson_corr, significance_threshold


@dataclass
class PredictionCase:
    """One scenario: what each model predicts vs what the traces show."""

    name: str
    description: str
    isa_level_predicts_leak: bool
    microarch_predicts_leak: bool
    measured_leak: bool
    peak_corr: float
    threshold: float

    @property
    def isa_level_correct(self) -> bool:
        return self.isa_level_predicts_leak == self.measured_leak

    @property
    def microarch_correct(self) -> bool:
        return self.microarch_predicts_leak == self.measured_leak

    def render(self) -> str:
        return (
            f"[{self.name}] {self.description}\n"
            f"  instruction-level model predicts leak : {self.isa_level_predicts_leak}"
            f" ({'correct' if self.isa_level_correct else 'WRONG'})\n"
            f"  microarch-aware model predicts leak   : {self.microarch_predicts_leak}"
            f" ({'correct' if self.microarch_correct else 'WRONG'})\n"
            f"  measured |r| = {abs(self.peak_corr):.3f} "
            f"(threshold {self.threshold:.3f}) -> leak = {self.measured_leak}"
        )


@dataclass
class BaselineComparison:
    cases: list[PredictionCase]

    @property
    def isa_level_errors(self) -> int:
        return sum(not case.isa_level_correct for case in self.cases)

    @property
    def microarch_errors(self) -> int:
        return sum(not case.microarch_correct for case in self.cases)

    @property
    def matches_paper(self) -> bool:
        # The paper's claim: the microarchitecture-aware model predicts
        # every case the per-instruction model gets wrong.
        return self.microarch_errors == 0 and self.isa_level_errors > 0

    def to_json(self) -> dict:
        return {
            "isa_level_errors": self.isa_level_errors,
            "microarch_errors": self.microarch_errors,
            "cases": [
                {
                    "name": case.name,
                    "isa_level_predicts_leak": case.isa_level_predicts_leak,
                    "microarch_predicts_leak": case.microarch_predicts_leak,
                    "measured_leak": case.measured_leak,
                    "peak_corr": round(case.peak_corr, 6),
                    "threshold": round(case.threshold, 6),
                }
                for case in self.cases
            ],
        }

    def artifacts(self) -> dict:
        return {}

    def render(self) -> str:
        parts = [case.render() for case in self.cases]
        parts.append(
            f"\nprediction errors: instruction-level {self.isa_level_errors}/"
            f"{len(self.cases)}, microarchitecture-aware {self.microarch_errors}/"
            f"{len(self.cases)}"
        )
        return "\n\n".join(parts)


_SHARES = [frozenset({"sA", "sB"})]
_ISSUE_LAYER = (
    "issue_op1_s0", "issue_op2_s0", "issue_op1_s1", "issue_op2_s1",
    "alu0_in_op1", "alu0_in_op2", "alu1_in_op1", "alu1_in_op2",
)


def _measure_case(
    name: str,
    description: str,
    source_lines: list[str],
    value_refs: tuple[tuple[int, ValueKind], tuple[int, ValueKind]],
    n_traces: int,
    seed: int,
    chunk_size: int | None = None,
    jobs: int = 1,
    backend=None,
) -> PredictionCase:
    source = "\n".join(
        ["    nop"] * 12 + ["bench_start:"] + [f"    {line}" for line in source_lines]
        + ["    nop"] * 12 + ["    bx lr"]
    )
    program = assemble(source)
    rng = np.random.default_rng(seed)
    value_a = rng.integers(0, 2**32, size=n_traces, dtype=np.uint64).astype(np.uint32)
    value_b = rng.integers(0, 2**32, size=n_traces, dtype=np.uint64).astype(np.uint32)
    fillers = {
        reg: rng.integers(0, 2**32, size=n_traces, dtype=np.uint64).astype(np.uint32)
        for reg in (Reg.R3, Reg.R8, Reg.R10)
    }
    inputs = BatchInputs(
        n_traces=n_traces, regs={Reg.R5: value_a, Reg.R6: value_b, **fillers}
    )
    engine = StreamingCampaign(
        program,
        scope=ScopeConfig(noise_sigma=8.0, kernel=(1.0,)),
        seed=seed ^ 0x9999,
        chunk_size=chunk_size,
        jobs=jobs,
        backend=backend,
    )
    _path, _schedule, leakage = engine.compiled(inputs)
    base = program.instruction_at(program.label_address("bench_start")).index
    refs = tuple((base + pos, kind) for pos, kind in value_refs)
    samples = sorted(
        {int(s) for comp in _ISSUE_LAYER for s in leakage.sample_positions(comp)}
    )
    model = hamming_distance(value_a, value_b).astype(np.float64)

    if chunk_size is None:
        trace_set = engine.acquire(inputs)
        table = trace_set.table
        corr = pearson_corr(model, trace_set.traces[:, samples])
    else:
        accumulator = OnlineCorrAccumulator()
        table = None
        for chunk in engine.stream(inputs):
            accumulator.update(model[chunk.start : chunk.stop], chunk.traces[:, samples])
            table = chunk.trace_set.table
        corr = accumulator.correlations()
    peak = float(corr[np.argmax(np.abs(corr))])

    # What does the instruction-level model predict?
    isa_model = IsaLevelModel()
    isa_predicts = isa_model.predicts_interaction(table, refs[0], refs[1])

    # What does the microarchitecture-aware analysis predict?
    taints = {Reg.R5: frozenset({"sA"}), Reg.R6: frozenset({"sB"})}
    auditor = MicroarchAuditor(program, _SHARES, taints)
    micro_predicts = not auditor.audit().clean
    threshold = significance_threshold(n_traces, 1 - 0.002 / max(len(samples), 1))
    return PredictionCase(
        name=name,
        description=description,
        isa_level_predicts_leak=isa_predicts,
        microarch_predicts_leak=micro_predicts,
        measured_leak=abs(peak) > threshold,
        peak_corr=peak,
        threshold=threshold,
    )


def run_baseline_comparison(
    n_traces: int = 2000,
    seed: int = 0xBA5E,
    chunk_size: int | None = None,
    jobs: int = 1,
    backend=None,
) -> BaselineComparison:
    """Measure the three scenarios and each model's verdicts."""
    cases = [
        _measure_case(
            "adjacent-single-issued",
            "back-to-back reg-reg adds (cannot pair): both models expect "
            "op1-bus interaction",
            ["add r1, r5, r3", "add r4, r6, r3"],
            ((0, ValueKind.OP1), (1, ValueKind.OP1)),
            n_traces,
            seed,
            chunk_size=chunk_size,
            jobs=jobs,
            backend=backend,
        ),
        _measure_case(
            "adjacent-dual-issued",
            "add + add-with-immediate (dual-issues): the instruction-level "
            "model still predicts interaction; the core separates the buses",
            ["add r1, r5, r3", "add r4, r6, #9"],
            ((0, ValueKind.OP1), (1, ValueKind.OP1)),
            n_traces,
            seed + 1,
            chunk_size=chunk_size,
            jobs=jobs,
            backend=backend,
        ),
        _measure_case(
            "non-adjacent-via-dual-issue",
            "mov(sA); mov(public); mov(sB): the instruction-level model sees "
            "no adjacency; the pair (mov, mov) dual-issues and the outer "
            "operands collide on slot 0",
            ["mov r1, r5", "mov r4, r8", "mov r9, r6"],
            ((0, ValueKind.OP2), (2, ValueKind.OP2)),
            n_traces,
            seed + 2,
            chunk_size=chunk_size,
            jobs=jobs,
            backend=backend,
        ),
    ]
    return BaselineComparison(cases=cases)


def _scenario_runner(request: RunRequest) -> BaselineComparison:
    kwargs = {} if request.seed is None else {"seed": request.seed}
    return run_baseline_comparison(
        n_traces=request.n_traces,
        chunk_size=request.chunk_size,
        jobs=request.jobs,
        backend=request.backend,
        **kwargs,
    )


SCENARIO = register(
    Scenario(
        name="baselines",
        title="Instruction-level vs microarchitecture-aware prediction",
        description=(
            "The false-positive/false-negative cases where per-instruction "
            "grey-box models mispredict a superscalar core."
        ),
        runner=_scenario_runner,
        default_traces=2000,
        capabilities=frozenset(
            {
                Capability.TRACES,
                Capability.SEED,
                Capability.CHUNKING,
                Capability.JOBS,
                Capability.BACKEND,
            }
        ),
        tags=("comparison",),
    )
)
