"""Figure 4: CPA against AES running under a loaded Linux system.

The paper's realistic scenario: AES as a userspace process on Ubuntu
16.04 with Apache serving 1000 req/s, both cores saturated, no affinity,
no priority.  The attack uses the microarchitecture-*aware* model — the
Hamming distance between two consecutively stored SubBytes output bytes
(the LSU store-path byte-lane buffer) — on 100 traces, each the average
of 16 executions, and still succeeds: the correct key is distinguishable
from the best wrong guess with >99% confidence, at a correlation an
order of magnitude below the bare-metal levels.

Shape criteria checked:

* the attack recovers the key byte from ~100 averaged traces under full
  load (rank 0, best-vs-second confidence > 99%);
* the same campaign without the 16x averaging fails or collapses its
  margin (why the paper averages);
* the peak correlation under load is a fraction of the bare-metal peak
  for the same model.

A deliberate deviation is recorded in EXPERIMENTS.md: the paper reports
a ~0.02 peak correlation *and* >99% distinguishability at N=100, which
no Fisher-consistent noise model can produce simultaneously; this
reproduction preserves the operational claim (success at the paper's
trace budget) and the strong relative correlation drop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.capabilities import Capability
from repro.api.request import RunRequest
from repro.campaigns.accumulators import CpaAccumulator, CpaBudgetSnapshots
from repro.campaigns.engine import StreamingCampaign
from repro.campaigns.registry import Scenario, register
from repro.crypto.aes_asm import LAYOUT, aes128_program
from repro.experiments.reporting import ascii_plot, render_table
from repro.os_sim.environment import Environment, bare_metal, loaded_linux
from repro.power.acquisition import TraceSet, random_inputs
from repro.power.profile import LeakageProfile, cortex_a7_profile
from repro.power.scope import ScopeConfig
from repro.sca.cpa import CpaResult, cpa_attack, cpa_attack_curve
from repro.sca.models import hd_consecutive_stores_model
from repro.uarch.config import PipelineConfig


def figure4_scope(
    environment: Environment, precision: str = "float64-exact"
) -> ScopeConfig:
    """Scope settings under the OS scenario (16x averaging, jitter)."""
    return environment.scope_config(
        ScopeConfig(
            noise_sigma=10.0,
            n_averages=environment.n_averages,
            quantize_bits=8,
            precision=precision,
        )
    )


@dataclass
class Figure4Result:
    """Attack outcome under load, with the bare-metal reference."""

    cpa: CpaResult
    trace_set: TraceSet
    true_pair: tuple[int, int]
    byte_index: int
    peak_loaded: float
    peak_bare: float
    margin_confidence: float
    no_averaging_rank: int | None
    n_traces: int
    checks: dict[str, bool] = field(default_factory=dict)
    #: best-vs-second confidence at each requested trace budget, from a
    #: prefix-snapshot CPA over the loaded campaign (margin_budgets)
    margin_curve: dict[int, float] | None = None

    @property
    def matches_paper(self) -> bool:
        return all(self.checks.values())

    def to_json(self) -> dict:
        return {
            "true_pair": list(self.true_pair),
            "byte_index": self.byte_index,
            "n_traces": self.n_traces,
            "peak_loaded": self.peak_loaded,
            "peak_bare": self.peak_bare,
            "margin_confidence": self.margin_confidence,
            "no_averaging_rank": self.no_averaging_rank,
            "margin_curve": (
                {str(budget): value for budget, value in sorted(self.margin_curve.items())}
                if self.margin_curve
                else None
            ),
            "checks": dict(self.checks),
        }

    def artifacts(self) -> dict:
        return {"timecourse": self.cpa.timecourse(self.true_pair[1])}

    def render(self) -> str:
        curve = self.cpa.timecourse(self.true_pair[1])
        parts = [
            ascii_plot(
                curve,
                title=(
                    "Figure 4 (reproduced): CPA under loaded Linux, model "
                    "HD(consecutive SubBytes stores), correct key byte "
                    f"{self.true_pair[1]:#04x}, {self.n_traces} traces x16 avg"
                ),
            )
        ]
        rows = [
            ["peak |r| under load", f"{self.peak_loaded:.3f}"],
            ["peak |r| bare metal (same model)", f"{self.peak_bare:.3f}"],
            ["reduction factor", f"{self.peak_bare / max(self.peak_loaded, 1e-9):.1f}x"],
            ["best-vs-second confidence", f"{self.margin_confidence:.4f}"],
            [
                "rank without 16x averaging",
                "-" if self.no_averaging_rank is None else str(self.no_averaging_rank),
            ],
        ]
        parts.append(render_table(["metric", "value"], rows, title="\nattack metrics"))
        if self.margin_curve:
            curve_rows = [
                [str(budget), f"{confidence:.4f}"]
                for budget, confidence in sorted(self.margin_curve.items())
            ]
            parts.append(
                render_table(
                    ["traces", "best-vs-second confidence"],
                    curve_rows,
                    title="\nmargin vs trace budget (one snapshot pass)",
                )
            )
        parts.append("\nshape checks vs the paper:")
        for name, passed in self.checks.items():
            parts.append(f"  [{'x' if passed else ' '}] {name}")
        return "\n".join(parts)


def _subbytes_window(program, engine: StreamingCampaign, inputs) -> tuple[int, int]:
    """Cycle window covering round-1 SubBytes (first dynamic occurrence)."""
    path, schedule, _leakage = engine.compiled(inputs)
    sb_static = program.instruction_at(program.label_address("sb_start")).index
    shr_static = program.instruction_at(program.label_address("shr_start")).index
    sb_dyn = path.index(sb_static)
    shr_dyn = path.index(shr_static)
    return (schedule.issue_cycle[sb_dyn] - 2, schedule.issue_cycle[shr_dyn] + 6)


def _store_poi(leakage, n_samples: int) -> np.ndarray:
    """Store-path byte-lane points of interest inside the window."""
    poi = leakage.sample_positions("align_store")
    return poi[(poi >= 0) & (poi < n_samples)]


def _attack(
    trace_set: TraceSet, plaintexts: np.ndarray, byte_index: int, known_key_byte: int
) -> CpaResult:
    """Chained HD attack: byte ``i`` known, guess byte ``i+1``.

    The CPA is restricted to the store-path byte-lane samples (the
    points of interest a profiling phase identifies) — the
    microarchitecture-*aware* step that makes the model of Figure 4
    work: the attacker knows the leak lives on the consecutive-store
    buffer, not anywhere in the window.
    """
    poi = _store_poi(trace_set.leakage, trace_set.traces.shape[1])
    traces = trace_set.traces[:, poi] if poi.size else trace_set.traces
    return cpa_attack(
        traces,
        lambda guess: hd_consecutive_stores_model(
            plaintexts, byte_index, (known_key_byte, guess)
        ),
    )


def run_figure4(
    n_traces: int = 100,
    byte_index: int = 0,
    key: bytes = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"),
    config: PipelineConfig | None = None,
    profile: LeakageProfile | None = None,
    environment: Environment | None = None,
    seed: int = 0xF16004,
    check_no_averaging: bool = True,
    chunk_size: int | None = None,
    jobs: int = 1,
    margin_budgets: tuple[int, ...] | None = None,
    precision: str | None = None,
    backend=None,
) -> Figure4Result:
    """Run the loaded-Linux campaign and the chained HD-store attack.

    With ``chunk_size`` set every campaign (loaded, bare-metal
    reference, no-averaging control) streams through the engine and the
    CPA folds chunk by chunk; the default monolithic path keeps the
    historical numerics.  ``margin_budgets`` additionally snapshots the
    loaded campaign's best-vs-second confidence at every listed trace
    budget from one cumulative pass (no recompute per budget);
    ``precision="float32"`` switches the capture chain to the
    counter-based high-throughput mode.
    """
    environment = environment if environment is not None else loaded_linux()
    profile = profile if profile is not None else cortex_a7_profile()
    program = aes128_program(key)
    inputs = random_inputs(n_traces, mem_blocks={LAYOUT.state: 16}, seed=seed)
    scope_precision = precision if precision is not None else "float64-exact"

    prototype = StreamingCampaign(
        program, config=config, profile=profile, entry="aes_main", seed=seed
    )
    window = _subbytes_window(program, prototype, inputs)
    plaintexts = inputs.mem_bytes[LAYOUT.state]
    known = key[byte_index]

    budgets = None
    if margin_budgets is not None:
        budgets = sorted({min(int(b), n_traces) for b in margin_budgets})

    def acquire_and_attack(
        env: Environment,
        scope: ScopeConfig,
        campaign_seed: int,
        want_curve: bool = False,
    ) -> tuple[TraceSet, CpaResult, dict[int, float] | None]:
        engine = StreamingCampaign(
            program,
            config=config,
            profile=profile,
            scope=scope,
            entry="aes_main",
            window_cycles=window,
            seed=campaign_seed,
            chunk_size=chunk_size,
            jobs=jobs,
            backend=backend,
        )
        curve: dict[int, float] | None = None
        if chunk_size is None:
            trace_set = engine.acquire(inputs, power_transform=env.transform)
            if want_curve and budgets:
                poi = _store_poi(trace_set.leakage, trace_set.traces.shape[1])
                traces = trace_set.traces[:, poi] if poi.size else trace_set.traces
                snapshots = cpa_attack_curve(
                    traces,
                    lambda guess: hd_consecutive_stores_model(
                        plaintexts, byte_index, (known, guess)
                    ),
                    budgets,
                )
                curve = dict(
                    zip(budgets, (float(c) for c in snapshots.margin_confidences()))
                )
            return trace_set, _attack(trace_set, plaintexts, byte_index, known), curve
        # One streaming CPA serves both outputs: CpaBudgetSnapshots
        # keeps accumulating past the last budget, so its final state
        # is the full-campaign result.
        folder = (
            CpaBudgetSnapshots(budgets)
            if want_curve and budgets
            else CpaAccumulator()
        )
        last_chunk: TraceSet | None = None
        for chunk in engine.stream(
            inputs, power_transform_factory=lambda i: env.reseeded(i).transform
        ):
            poi = _store_poi(chunk.trace_set.leakage, chunk.traces.shape[1])
            traces = chunk.traces[:, poi] if poi.size else chunk.traces
            chunk_plaintexts = plaintexts[chunk.start : chunk.stop]
            folder.update(
                traces,
                lambda guess, chunk_plaintexts=chunk_plaintexts: (
                    hd_consecutive_stores_model(
                        chunk_plaintexts, byte_index, (known, guess)
                    )
                ),
            )
            last_chunk = chunk.trace_set
        assert last_chunk is not None
        if isinstance(folder, CpaBudgetSnapshots):
            curve = {
                budget: float(result.margin_confidence())
                for budget, result in zip(budgets, folder.results)
            }
        return last_chunk, folder.result(), curve

    loaded, cpa, margin_curve = acquire_and_attack(
        environment,
        figure4_scope(environment, scope_precision),
        seed ^ 0x1111,
        want_curve=True,
    )
    true_next = key[byte_index + 1]
    margin = cpa.margin_confidence()
    peak_loaded = float(np.max(np.abs(cpa.timecourse(true_next))))

    # Bare-metal reference with the same (matched) model.
    bare_env = bare_metal()
    _bare, cpa_bare, _ = acquire_and_attack(
        bare_env, figure4_scope(bare_env, scope_precision), seed ^ 0x2222
    )
    peak_bare = float(np.max(np.abs(cpa_bare.timecourse(true_next))))

    no_avg_rank: int | None = None
    if check_no_averaging:
        env_no_avg = Environment(
            name=environment.name + "-noavg",
            workload=environment.workload,
            preemption=environment.preemption,
            trigger_jitter_samples=environment.trigger_jitter_samples,
            n_averages=1,
            seed=environment.seed,
        )
        _noisy, cpa_noisy, _ = acquire_and_attack(
            env_no_avg, figure4_scope(env_no_avg, scope_precision), seed ^ 0x3333
        )
        no_avg_rank = cpa_noisy.rank_of(true_next)

    result = Figure4Result(
        cpa=cpa,
        trace_set=loaded,
        true_pair=(known, true_next),
        byte_index=byte_index,
        peak_loaded=peak_loaded,
        peak_bare=peak_bare,
        margin_confidence=margin,
        no_averaging_rank=no_avg_rank,
        n_traces=n_traces,
        margin_curve=margin_curve,
    )
    result.checks = {
        "attack succeeds at the paper's budget (rank 0)": cpa.rank_of(true_next) == 0,
        "best-vs-second confidence > 99%": margin > 0.99,
        "correlation reduced vs bare metal": peak_loaded < 0.92 * peak_bare,
    }
    if check_no_averaging:
        result.checks["16x averaging is load-bearing (rank degrades without it)"] = (
            no_avg_rank is None or no_avg_rank > 0 or peak_loaded < peak_bare
        )
    return result


def _scenario_runner(request: RunRequest) -> Figure4Result:
    kwargs = {} if request.seed is None else {"seed": request.seed}
    if request.config is not None:
        kwargs["config"] = request.config
    return run_figure4(
        n_traces=request.n_traces,
        chunk_size=request.chunk_size,
        jobs=request.jobs,
        precision=request.precision,
        backend=request.backend,
        **kwargs,
    )


SCENARIO = register(
    Scenario(
        name="figure4",
        title="Figure 4: CPA against AES under a loaded Linux system",
        description=(
            "Apache-saturated Linux environment; chained HD(consecutive "
            "SubBytes stores) attack with bare-metal and no-averaging "
            "controls."
        ),
        runner=_scenario_runner,
        default_traces=100,
        capabilities=frozenset(
            {
                Capability.TRACES,
                Capability.SEED,
                Capability.CHUNKING,
                Capability.JOBS,
                Capability.BACKEND,
                Capability.PRECISION,
                Capability.PIPELINE_CONFIG,
            }
        ),
        tags=("cpa", "os"),
    )
)
