"""Figure 3: CPA against bare-metal AES with the HW(SubBytes out) model.

The paper plots Pearson's correlation over time for the correct key
byte, using the microarchitecture-*unaware* Hamming-weight-of-SubBytes
model, over the first AES round.  The correlation trace is explained by
the Table-2 components: the S-box load and store inside SubBytes, the
byte load + three progressive shifts + store of ShiftRows, the MDR
receiving a zero right after, and the shift-reduce GF(2^8) products and
spills of the non-inlined MixColumns helper.  Store leakage is the
strongest.

Shape criteria checked against the paper:

* the correct key byte wins the CPA (rank 0);
* significant correlation appears in each of SubBytes, ShiftRows and
  MixColumns, and at the MDR-zeroing event;
* the global correlation peak sits on a store instruction;
* the peak magnitude is in the paper's regime (~0.1 with the calibrated
  noise, against their 100k-trace hardware campaign).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.capabilities import Capability
from repro.api.request import RunRequest
from repro.campaigns.accumulators import CpaAccumulator
from repro.campaigns.engine import StreamingCampaign
from repro.campaigns.registry import Scenario, register
from repro.crypto.aes_asm import LAYOUT, round1_only_program
from repro.experiments.reporting import ascii_plot, render_table, samples_to_microseconds
from repro.power.acquisition import TraceSet, random_inputs
from repro.power.profile import LeakageProfile, cortex_a7_profile
from repro.power.scope import ScopeConfig
from repro.sca.cpa import CpaResult, cpa_attack
from repro.sca.models import hw_sbox_model
from repro.sca.stats import significance_threshold
from repro.uarch.config import PipelineConfig

#: Primitive boundary labels emitted by the AES generator, in time order.
PRIMITIVE_LABELS = ("ark0_start", "sb_start", "shr_start", "mc_start", "trigger_end")
PRIMITIVE_NAMES = {"ark0_start": "ARK", "sb_start": "SB", "shr_start": "ShR", "mc_start": "MC"}


def figure3_scope(precision: str = "float64-exact") -> ScopeConfig:
    """Bare-metal acquisition calibrated for the paper's ~0.1 peak."""
    return ScopeConfig(
        noise_sigma=60.0, n_averages=16, quantize_bits=8, precision=precision
    )


@dataclass
class Figure3Result:
    """The reproduced correlation-vs-time figure and its shape checks."""

    cpa: CpaResult
    trace_set: TraceSet
    true_key_byte: int
    byte_index: int
    segments: dict[str, tuple[int, int]]  # primitive -> (sample_lo, sample_hi)
    zero_store_sample: int | None
    n_traces: int
    checks: dict[str, bool] = field(default_factory=dict)

    @property
    def timecourse(self) -> np.ndarray:
        return self.cpa.timecourse(self.true_key_byte)

    @property
    def matches_paper(self) -> bool:
        return all(self.checks.values())

    def to_json(self) -> dict:
        return {
            "true_key_byte": self.true_key_byte,
            "byte_index": self.byte_index,
            "n_traces": self.n_traces,
            "rank_of_true_key": self.cpa.rank_of(self.true_key_byte),
            "peak_abs_corr": float(np.max(np.abs(self.timecourse))),
            "segment_peaks": {
                name: self.segment_peak(name) for name in self.segments
            },
            "checks": dict(self.checks),
        }

    def artifacts(self) -> dict:
        return {"timecourse": self.timecourse}

    def segment_peak(self, name: str) -> float:
        lo, hi = self.segments[name]
        segment = self.timecourse[lo:hi]
        return float(np.max(np.abs(segment))) if segment.size else 0.0

    def render(self) -> str:
        spc = self.trace_set.leakage.samples_per_cycle
        curve = self.timecourse
        markers = {}
        for name, (lo, _hi) in self.segments.items():
            markers[lo] = name[0]
        parts = [
            ascii_plot(
                curve,
                title=(
                    "Figure 3 (reproduced): CPA vs time, model HW(SubBytes out), "
                    f"correct key byte {self.true_key_byte:#04x}"
                ),
                markers=markers,
                x_label=(
                    f"time: 0 .. {samples_to_microseconds(curve.size, spc):.2f} us "
                    "(markers: A=ARK, s=SubBytes, S=ShiftRows, m=MixColumns)"
                ),
            )
        ]
        rows = [
            [name, f"{self.segment_peak(name):.3f}"]
            for name in ("ARK", "SB", "ShR", "MC")
            if name in self.segments
        ]
        parts.append(render_table(["primitive", "peak |r|"], rows, title="\nper-primitive peaks"))
        parts.append("\nshape checks vs the paper:")
        for name, passed in self.checks.items():
            parts.append(f"  [{'x' if passed else ' '}] {name}")
        return "\n".join(parts)


def _segment_map(trace_set: TraceSet, program) -> dict[str, tuple[int, int]]:
    """Sample ranges of the round-1 primitives, from the emitted labels."""
    boundaries: list[tuple[str, int]] = []
    for label in PRIMITIVE_LABELS:
        static_index = program.instruction_at(program.label_address(label)).index
        dyn = trace_set.path.index(static_index)
        cycle = trace_set.schedule.issue_cycle[dyn]
        boundaries.append((label, trace_set.leakage.sample_of_cycle(cycle)))
    segments: dict[str, tuple[int, int]] = {}
    for (label, start), (_next, stop) in zip(boundaries, boundaries[1:]):
        if label in PRIMITIVE_NAMES:
            segments[PRIMITIVE_NAMES[label]] = (max(0, start), stop)
    return segments


def run_figure3(
    n_traces: int = 3000,
    byte_index: int = 0,
    key: bytes = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"),
    config: PipelineConfig | None = None,
    profile: LeakageProfile | None = None,
    scope: ScopeConfig | None = None,
    seed: int = 0xF16003,
    chunk_size: int | None = None,
    jobs: int = 1,
    precision: str | None = None,
    backend=None,
    retries: int | None = None,
    chunk_timeout: float | None = None,
    checkpoint: str | None = None,
    resume: bool = False,
    reduce: str | None = None,
) -> Figure3Result:
    """Acquire the bare-metal campaign and run the Figure-3 CPA.

    With ``chunk_size`` set the campaign streams through the engine in
    bounded memory and the CPA folds chunk by chunk; the default runs
    the historical monolithic path (identical numerics).
    ``precision="float32"`` switches the capture chain to the
    counter-based high-throughput mode (ignored if ``scope`` is given).

    The resilience knobs (``retries``, ``chunk_timeout``,
    ``checkpoint``/``resume``) force the streamed path — retrying,
    watchdogging and checkpointing all operate per chunk — defaulting to
    a single whole-campaign chunk when ``chunk_size`` is unset.  With a
    checkpoint, the CPA accumulator state and the completed chunk set
    persist after every folded chunk; a killed run restarted with
    ``resume=True`` re-acquires only the missing chunks and produces
    byte-identical results (see ``docs/resilience.md``).

    ``reduce="worker"`` runs the comms-avoiding dispatch: each worker
    folds its chunk into a CPA accumulator locally and only the compact
    sufficient-statistic state crosses the process boundary, merged in
    chunk order — byte-identical to the streamed parent fold, at a
    fraction of the IPC bytes (see ``BENCH_comms.json``).  The default
    (``None`` or ``"parent"``) keeps the raw-chunk paths above.
    """
    if reduce not in (None, "parent", "worker"):
        raise ValueError(f"reduce must be 'parent' or 'worker', got {reduce!r}")
    program = round1_only_program(key)
    inputs = random_inputs(n_traces, mem_blocks={LAYOUT.state: 16}, seed=seed)
    engine = StreamingCampaign(
        program,
        config=config,
        profile=profile if profile is not None else cortex_a7_profile(),
        scope=scope
        if scope is not None
        else figure3_scope(precision if precision is not None else "float64-exact"),
        entry="aes_round1",
        seed=seed ^ 0x5A5A,
        chunk_size=chunk_size,
        jobs=jobs,
        backend=backend,
    )
    plaintexts = inputs.mem_bytes[LAYOUT.state]

    resilient = retries is not None or chunk_timeout is not None or checkpoint is not None
    if reduce == "worker":
        from repro.campaigns.reduction import SboxCpaFold

        checkpointer = None
        if checkpoint is not None:
            from repro.campaigns.checkpoint import Checkpointer

            # No state_fn/restore_fn: the engine persists the merged
            # fold state via the fold's own freeze/thaw.
            checkpointer = Checkpointer(checkpoint, resume=resume)
        reduced = engine.reduce(
            inputs,
            SboxCpaFold(byte_index=byte_index),
            retry=retries,
            chunk_timeout=chunk_timeout,
            checkpoint=checkpointer,
        )
        trace_set = reduced.trace_set
        cpa = reduced.value.result()
    elif chunk_size is None and not resilient:
        trace_set = engine.acquire(inputs)
        cpa = cpa_attack(
            trace_set.traces, lambda guess: hw_sbox_model(plaintexts, byte_index, guess)
        )
    else:
        # A mutable holder so checkpoint restore can swap the live
        # accumulator for the persisted one before streaming resumes.
        state = {"cpa": CpaAccumulator()}
        checkpointer = None
        if checkpoint is not None:
            from repro.campaigns.checkpoint import Checkpointer

            checkpointer = Checkpointer(
                checkpoint,
                state_fn=lambda: state["cpa"],
                restore_fn=lambda saved: state.__setitem__("cpa", saved),
                resume=resume,
            )
        trace_set = None
        for chunk in engine.stream(
            inputs,
            retry=retries,
            chunk_timeout=chunk_timeout,
            checkpoint=checkpointer,
        ):
            trace_set = chunk.trace_set
            if chunk.replayed:
                # A fully-checkpointed run replays its last chunk for
                # metadata only; its statistics are already in the
                # restored accumulator.
                continue
            chunk_plaintexts = plaintexts[chunk.start : chunk.stop]
            state["cpa"].update(
                chunk.traces,
                lambda guess: hw_sbox_model(chunk_plaintexts, byte_index, guess),
            )
        assert trace_set is not None
        cpa = state["cpa"].result()
    segments = _segment_map(trace_set, program)
    threshold = significance_threshold(n_traces, confidence=0.995)
    timecourse = cpa.timecourse(key[byte_index])

    # Which instruction does the global peak sit on?
    peak_sample = int(np.argmax(np.abs(timecourse)))
    spc = trace_set.leakage.samples_per_cycle
    peak_cycle = peak_sample // spc + trace_set.leakage.window[0]
    nearest_dyn = int(
        np.argmin([abs(c - peak_cycle) for c in trace_set.schedule.issue_cycle])
    )
    peak_instr = program.instructions[trace_set.path[nearest_dyn]]

    result = Figure3Result(
        cpa=cpa,
        trace_set=trace_set,
        true_key_byte=key[byte_index],
        byte_index=byte_index,
        segments=segments,
        zero_store_sample=None,
        n_traces=n_traces,
    )
    result.checks = {
        "correct key ranks first": cpa.rank_of(key[byte_index]) == 0,
        "SubBytes leaks (S-box load/store)": result.segment_peak("SB") > threshold,
        "ShiftRows leaks (load, shifts, store)": result.segment_peak("ShR") > threshold,
        "MixColumns leaks (products, spills)": result.segment_peak("MC") > threshold,
        "global peak is on a memory instruction": peak_instr.is_memory,
        "peak magnitude in the paper's regime (0.03..0.4)": 0.03
        < result.segment_peak("SB")
        < 0.4,
    }
    return result


def _scenario_runner(request: RunRequest) -> Figure3Result:
    kwargs = {} if request.seed is None else {"seed": request.seed}
    if request.config is not None:
        kwargs["config"] = request.config
    if request.scope is not None:
        kwargs["scope"] = request.scope
    return run_figure3(
        n_traces=request.n_traces,
        chunk_size=request.chunk_size,
        jobs=request.jobs,
        precision=request.precision,
        backend=request.backend,
        retries=request.retries,
        chunk_timeout=request.chunk_timeout,
        checkpoint=request.checkpoint,
        resume=bool(request.resume),
        reduce=request.reduce,
        **kwargs,
    )


SCENARIO = register(
    Scenario(
        name="figure3",
        title="Figure 3: CPA vs time against bare-metal AES",
        description=(
            "Round-1 AES campaign on the bare-metal A7 model; CPA with the "
            "microarchitecture-unaware HW(SubBytes out) model."
        ),
        runner=_scenario_runner,
        default_traces=3000,
        capabilities=frozenset(
            {
                Capability.TRACES,
                Capability.SEED,
                Capability.CHUNKING,
                Capability.JOBS,
                Capability.BACKEND,
                Capability.PRECISION,
                Capability.PIPELINE_CONFIG,
                Capability.SCOPE,
                Capability.RESILIENCE,
                Capability.REDUCE,
            }
        ),
        tags=("cpa", "bare-metal"),
    )
)
