"""Figure 2: the pipeline structure deduced from the CPI measurements.

Runs the Table-1 campaign (or reuses a provided matrix), feeds it to the
Section-3.2 inference chain, and compares every deduction with what the
paper's Figure 2 depicts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.uarch.config import PipelineConfig
from repro.uarch.cpi import CpiMatrix, measure_matrix
from repro.uarch.inference import CORTEX_A7_EXPECTED, InferredPipeline, infer_pipeline


@dataclass
class Figure2Result:
    """Inferred structure and the per-field comparison with the paper."""

    inferred: InferredPipeline
    expected: InferredPipeline
    disagreements: list[str]

    @property
    def matches_paper(self) -> bool:
        return not self.disagreements

    def to_json(self) -> dict:
        return {
            "inferred": {
                f.name: getattr(self.inferred, f.name) for f in fields(InferredPipeline)
            },
            "expected": {
                f.name: getattr(self.expected, f.name) for f in fields(InferredPipeline)
            },
            "disagreements": list(self.disagreements),
        }

    def artifacts(self) -> dict:
        return {}

    def render(self) -> str:
        parts = [self.inferred.describe()]
        if self.matches_paper:
            parts.append("\nall deductions match the paper's Figure 2")
        else:
            parts.append("\ndisagreements with the paper's Figure 2:")
            for name in self.disagreements:
                parts.append(
                    f"  {name}: inferred {getattr(self.inferred, name)!r}, "
                    f"paper {getattr(self.expected, name)!r}"
                )
        return "\n".join(parts)


def run_figure2(
    config: PipelineConfig | None = None,
    matrix: CpiMatrix | None = None,
    reps: int = 200,
) -> Figure2Result:
    """Infer the pipeline from CPI data and compare with Figure 2."""
    if matrix is None:
        matrix = measure_matrix(config=config, reps=reps, with_hazards=False)
    inferred = infer_pipeline(matrix)
    disagreements = [
        f.name
        for f in fields(InferredPipeline)
        if getattr(inferred, f.name) != getattr(CORTEX_A7_EXPECTED, f.name)
    ]
    return Figure2Result(
        inferred=inferred, expected=CORTEX_A7_EXPECTED, disagreements=disagreements
    )


def _scenario_runner(request):
    return run_figure2(reps=request.reps, config=request.config)


def _register_scenario():
    from repro.api.capabilities import Capability
    from repro.campaigns.registry import Scenario, register

    register(
        Scenario(
            name="figure2",
            title="Figure 2: pipeline structure inferred from CPI data",
            description=(
                "Black-box inference of issue width, latencies and "
                "forwarding from the CPI matrix."
            ),
            runner=_scenario_runner,
            default_traces=None,
            capabilities=frozenset({Capability.REPS, Capability.PIPELINE_CONFIG}),
            tags=("cpi",),
        )
    )


_register_scenario()
