"""Ablation experiments: the Section-4.2 claims as measurable contrasts.

Each ablation builds a pair of campaigns that differ in exactly one
microarchitectural or code property and verifies that a share-combining
leak appears on one side and not the other:

* **dual-issue adjacency** (§4.2 iii): with dual-issue enabled, an
  instruction pairs with the one before it, making two *non-adjacent*
  instructions' operands collide on the slot-0 bus; single-issue keeps
  them separated;
* **operand swap** (§4.2 i+ii): swapping the operands of a commutative
  ``eor`` moves a mask share into the bus position a masked share uses,
  so their Hamming distance — the unmasked value's weight — leaks;
* **nop insertion** (§4.1): the A7 nop drives the operand buses to
  zero, adding Hamming-*weight* leakage of neighbouring operands that
  the untouched sequence does not exhibit;
* **LSU remanence** (§4.2 iv): a stored share survives in the
  store-path byte lane across unrelated instructions and combines with
  a later stored share; clearing the LSU buffers removes the leak;
* **scalar vs superscalar** (related work [18,19]): the scalar core
  leaks the HD of consecutive *results* through its single write-back
  port even for a pair the A7 would dual-issue onto separate ports;
* **parallel share scheduling** (§4.2, defensive): dual-issuing the two
  shares routes them over distinct slot buses and write-back ports,
  suppressing the sequential collision — the "closer mimicry of a
  registered hardware computation" the paper suggests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaigns.accumulators import BudgetSplitter, OnlineCorrAccumulator
from repro.campaigns.engine import StreamingCampaign
from repro.api.capabilities import Capability
from repro.api.request import RunRequest
from repro.campaigns.registry import Scenario, register
from repro.isa.parser import assemble
from repro.isa.registers import Reg
from repro.power.acquisition import BatchInputs
from repro.power.hamming import hamming_weight
from repro.power.profile import LeakageProfile, cortex_a7_profile
from repro.power.scope import ScopeConfig
from repro.sca.stats import pearson_corr, prefix_pearson_corr, significance_threshold
from repro.uarch.config import PipelineConfig
from repro.uarch.pipeline import Pipeline
from repro.uarch.scalar import ScalarPipeline
from repro.power.synth import LeakageSchedule

_ISSUE_LAYER = (
    "issue_op1_s0",
    "issue_op2_s0",
    "issue_op1_s1",
    "issue_op2_s1",
    "alu0_in_op1",
    "alu0_in_op2",
    "alu1_in_op1",
    "alu1_in_op2",
)

_WB_LAYER = ("wb_bus0", "wb_bus1")


@dataclass
class AblationResult:
    """A measured contrast: the leak's correlation on both sides."""

    name: str
    claim: str
    corr_with: float
    corr_without: float
    threshold: float
    #: peak |r| of the leak side at each requested trace budget (one
    #: prefix-snapshot pass, no recompute per budget); None if not asked
    curve: dict[int, float] | None = None

    @property
    def leak_appears(self) -> bool:
        return abs(self.corr_with) > self.threshold

    @property
    def leak_suppressed(self) -> bool:
        return abs(self.corr_without) <= self.threshold

    @property
    def demonstrated(self) -> bool:
        return self.leak_appears and self.leak_suppressed

    def render(self) -> str:
        verdict = "DEMONSTRATED" if self.demonstrated else "NOT demonstrated"
        text = (
            f"[{self.name}] {self.claim}\n"
            f"  leak present : |r| = {abs(self.corr_with):.3f} "
            f"(threshold {self.threshold:.3f})\n"
            f"  leak absent  : |r| = {abs(self.corr_without):.3f}\n"
            f"  -> {verdict}"
        )
        if self.curve:
            points = ", ".join(
                f"{budget}:{peak:.3f}" for budget, peak in sorted(self.curve.items())
            )
            text += f"\n  |r| vs budget: {points}"
        return text


def _ablation_scope(precision: str | None = None) -> ScopeConfig:
    return ScopeConfig(
        noise_sigma=8.0,
        kernel=(1.0,),
        n_averages=16,
        quantize_bits=8,
        precision=precision if precision is not None else "float64-exact",
    )


def _measure(
    source: str,
    inputs: BatchInputs,
    model: np.ndarray,
    components: tuple[str, ...],
    config: PipelineConfig | None = None,
    profile: LeakageProfile | None = None,
    seed: int = 0xAB1A,
    chunk_size: int | None = None,
    jobs: int = 1,
    budgets: tuple[int, ...] | None = None,
    precision: str | None = None,
    backend=None,
) -> tuple[float, int, dict[int, float] | None]:
    """Peak |corr| of ``model`` at the given components' samples.

    Returns ``(peak, n_samples, curve)`` so callers can
    Bonferroni-correct the significance threshold for the
    max-over-samples statistic.  With ``chunk_size`` set the campaign
    streams through the engine and the correlation folds chunk by
    chunk; with ``budgets`` set the same single pass also snapshots the
    peak |corr| at every listed trace budget (no recompute per budget).
    """
    program = assemble(source)
    engine = StreamingCampaign(
        program,
        config=config,
        profile=profile if profile is not None else cortex_a7_profile(),
        scope=_ablation_scope(precision),
        seed=seed,
        chunk_size=chunk_size,
        jobs=jobs,
        backend=backend,
    )
    _path, _schedule, leakage = engine.compiled(inputs)
    samples: set[int] = set()
    for name in components:
        samples.update(int(s) for s in leakage.sample_positions(name))
    if not samples:
        return 0.0, 0, None
    columns = sorted(samples)
    model = model.astype(np.float64)
    budget_list = (
        sorted({min(int(b), inputs.n_traces) for b in budgets}) if budgets else None
    )
    curve: dict[int, float] | None = None
    if chunk_size is None:
        trace_set = engine.acquire(inputs)
        corr = pearson_corr(model, trace_set.traces[:, columns])
        if budget_list:
            prefixes = prefix_pearson_corr(
                model, trace_set.traces[:, columns], budget_list
            )
            curve = {
                budget: float(np.max(np.abs(prefixes[i])))
                for i, budget in enumerate(budget_list)
            }
    else:
        accumulator = OnlineCorrAccumulator()
        splitter = BudgetSplitter(budget_list) if budget_list else None
        curve = {} if budget_list else None
        for chunk in engine.stream(inputs):
            rows = chunk.traces[:, columns]
            chunk_model = model[chunk.start : chunk.stop]
            if splitter is None:
                accumulator.update(chunk_model, rows)
                continue
            for low, high, budget in splitter.split(rows.shape[0]):
                accumulator.update(chunk_model[low:high], rows[low:high])
                if budget is not None:
                    snapshot = accumulator.snapshot()
                    curve[budget] = float(np.max(np.abs(snapshot)))
        corr = accumulator.correlations()
    return float(corr[np.argmax(np.abs(corr))]), len(columns), curve


def _bonferroni_threshold(n_traces: int, n_samples: int, alpha: float = 0.002) -> float:
    """Significance threshold for a max over ``n_samples`` correlations.

    Slightly stricter than the paper's per-sample 99.5% because the
    ablation verdict takes a maximum over the component's samples.
    """
    corrected = 1.0 - alpha / max(n_samples, 1)
    return significance_threshold(n_traces, corrected)


def _masked_inputs(n_traces: int, seed: int) -> tuple[BatchInputs, np.ndarray]:
    """Random secret v, mask m; r5 = v^m (masked share), r6 = m (mask)."""
    rng = np.random.default_rng(seed)
    secret = rng.integers(0, 2**32, size=n_traces, dtype=np.uint64).astype(np.uint32)
    mask = rng.integers(0, 2**32, size=n_traces, dtype=np.uint64).astype(np.uint32)
    publics = {
        reg: rng.integers(0, 2**32, size=n_traces, dtype=np.uint64).astype(np.uint32)
        for reg in (Reg.R8, Reg.R10)
    }
    regs = {Reg.R5: secret ^ mask, Reg.R6: mask, **publics}
    return BatchInputs(n_traces=n_traces, regs=regs), secret


def _pad(lines: list[str], n: int = 12) -> list[str]:
    return ["    nop"] * n + lines + ["    nop"] * n + ["    bx lr"]


# ----------------------------------------------------------------------
# The ablations
# ----------------------------------------------------------------------


def ablate_operand_swap(
    n_traces: int = 2000,
    seed: int = 0x0A5B,
    chunk_size: int | None = None,
    jobs: int = 1,
    budgets: tuple[int, ...] | None = None,
    precision: str | None = None,
    backend=None,
) -> AblationResult:
    """§4.2 i+ii: a commutative operand swap re-combines the shares."""
    inputs, secret = _masked_inputs(n_traces, seed)
    model = hamming_weight(secret).astype(np.float64)
    # Unsafe: both shares travel in the first-operand position of
    # consecutive instructions -> HD(v^m, m) = HW(v) on the op1 bus.
    unsafe = _pad(["    eor r7, r5, r8", "    eor r9, r6, r10"])
    # Safe: the second eor is written with its (commutative) operands
    # swapped, so the mask rides the op2 bus instead.
    safe = _pad(["    eor r7, r5, r8", "    eor r9, r10, r6"])
    corr_unsafe, n_samples, curve = _measure(
        "\n".join(unsafe), inputs, model, _ISSUE_LAYER, seed=seed,
        chunk_size=chunk_size, jobs=jobs, budgets=budgets, precision=precision,
        backend=backend,
    )
    corr_safe, _n, _curve = _measure(
        "\n".join(safe), inputs, model, _ISSUE_LAYER, seed=seed + 1,
        chunk_size=chunk_size, jobs=jobs, precision=precision, backend=backend,
    )
    return AblationResult(
        name="operand-swap",
        claim="swapping commutative eor operands combines the shares on the op1 bus",
        corr_with=corr_unsafe,
        corr_without=corr_safe,
        threshold=_bonferroni_threshold(n_traces, n_samples),
        curve=curve,
    )


def ablate_dual_issue_adjacency(
    n_traces: int = 2000,
    seed: int = 0x0A5C,
    chunk_size: int | None = None,
    jobs: int = 1,
    budgets: tuple[int, ...] | None = None,
    precision: str | None = None,
    backend=None,
) -> AblationResult:
    """§4.2 iii: dual-issue makes non-adjacent instructions collide."""
    inputs, secret = _masked_inputs(n_traces, seed)
    model = hamming_weight(secret).astype(np.float64)
    # mov(share1); mov(public) dual-issue as an aligned pair, so the
    # slot-0 operand bus goes share1 -> share2 although another
    # instruction sits between them in program order.
    lines = _pad(["    mov r7, r5", "    mov r9, r8", "    mov r11, r6"])
    source = "\n".join(lines)
    corr_dual, n_samples, curve = _measure(
        source, inputs, model, _ISSUE_LAYER, seed=seed, chunk_size=chunk_size,
        jobs=jobs, budgets=budgets, precision=precision, backend=backend,
    )
    corr_single, _n, _curve = _measure(
        source,
        inputs,
        model,
        _ISSUE_LAYER,
        config=PipelineConfig(dual_issue=False),
        seed=seed + 1,
        chunk_size=chunk_size,
        jobs=jobs,
        precision=precision,
        backend=backend,
    )
    return AblationResult(
        name="dual-issue-adjacency",
        claim="with dual-issue, operands of non-adjacent instructions share the slot-0 bus",
        corr_with=corr_dual,
        corr_without=corr_single,
        threshold=_bonferroni_threshold(n_traces, n_samples),
        curve=curve,
    )


def ablate_nop_insertion(
    n_traces: int = 2000,
    seed: int = 0x0A5D,
    chunk_size: int | None = None,
    jobs: int = 1,
    budgets: tuple[int, ...] | None = None,
    precision: str | None = None,
    backend=None,
) -> AblationResult:
    """§4.1: inserting a nop adds HW leakage modes (bus driven to zero)."""
    rng = np.random.default_rng(seed)
    operand = rng.integers(0, 2**32, size=n_traces, dtype=np.uint64).astype(np.uint32)
    partner = rng.integers(0, 2**32, size=n_traces, dtype=np.uint64).astype(np.uint32)
    inputs = BatchInputs(n_traces=n_traces, regs={Reg.R5: operand, Reg.R8: partner})
    model = hamming_weight(operand).astype(np.float64)
    # Without the nop, r5 transitions against another random operand on
    # the bus (HD uncorrelated with HW(r5)); the inserted nop drives the
    # bus to zero around it, so HW(r5) appears.
    with_nop = _pad(["    mov r9, r8", "    mov r7, r5", "    nop", "    mov r9, r8"], n=0)
    with_nop = ["    mov r9, r8"] + with_nop  # keep pair alignment identical
    without_nop = _pad(
        ["    mov r9, r8", "    mov r7, r5", "    mov r9, r8"], n=0
    )
    without_nop = ["    mov r9, r8"] + without_nop
    corr_with, n_samples, curve = _measure(
        "\n".join(with_nop), inputs, model, _ISSUE_LAYER, seed=seed,
        chunk_size=chunk_size, jobs=jobs, budgets=budgets, precision=precision,
        backend=backend,
    )
    corr_without, _n, _curve = _measure(
        "\n".join(without_nop), inputs, model, _ISSUE_LAYER, seed=seed + 1,
        chunk_size=chunk_size, jobs=jobs, precision=precision, backend=backend,
    )
    return AblationResult(
        name="nop-insertion",
        claim="a semantically neutral nop adds Hamming-weight leakage of its neighbours",
        corr_with=corr_with,
        corr_without=corr_without,
        threshold=_bonferroni_threshold(n_traces, n_samples),
        curve=curve,
    )


def ablate_lsu_remanence(
    n_traces: int = 2000,
    seed: int = 0x0A5E,
    chunk_size: int | None = None,
    jobs: int = 1,
    budgets: tuple[int, ...] | None = None,
    precision: str | None = None,
    backend=None,
) -> AblationResult:
    """§4.2 iv: a stored share survives in the LSU and meets the next one."""
    inputs, secret = _masked_inputs(n_traces, seed)
    model = hamming_weight(secret & 0xFF).astype(np.float64)
    buffers = "\n    .org 0x30000\nbuf_a:\n    .space 64\nbuf_b:\n    .space 64"
    lines = _pad(
        [
            "    ldr r9, =buf_a",
            "    ldr r10, =buf_b",
            "    strb r5, [r9]",  # share 1 (byte) through the store lanes
            "    add r7, r8, #1",  # unrelated work in between
            "    add r7, r7, #2",
            "    strb r6, [r10]",  # share 2: HD(s1, s2) = HW(v) remanence
        ]
    )
    source = "\n".join(lines) + buffers
    corr_with, n_samples, curve = _measure(
        source, inputs, model, ("align_store",), seed=seed, chunk_size=chunk_size,
        jobs=jobs, budgets=budgets, precision=precision, backend=backend,
    )
    corr_without, _n, _curve = _measure(
        source,
        inputs,
        model,
        ("align_store",),
        config=PipelineConfig(lsu_remanence=False),
        seed=seed + 1,
        chunk_size=chunk_size,
        jobs=jobs,
        precision=precision,
        backend=backend,
    )
    return AblationResult(
        name="lsu-remanence",
        claim="store-path byte lanes keep the last share across unrelated instructions",
        corr_with=corr_with,
        corr_without=corr_without,
        threshold=_bonferroni_threshold(n_traces, n_samples),
        curve=curve,
    )


def ablate_parallel_shares(
    n_traces: int = 2000,
    seed: int = 0x0A5F,
    chunk_size: int | None = None,
    jobs: int = 1,
    budgets: tuple[int, ...] | None = None,
    precision: str | None = None,
    backend=None,
) -> AblationResult:
    """§4.2 defensive: dual-issuing the two shares separates their buses."""
    inputs, secret = _masked_inputs(n_traces, seed)
    model = hamming_weight(secret).astype(np.float64)
    # Sequential: both shares in slot 0 on consecutive cycles -> leak.
    sequential = _pad(["    mov r7, r5", "    nop", "    nop", "    mov r9, r6"])
    # Parallel: the two movs form an aligned dual-issue pair -> each
    # share has its own slot bus and write-back port.
    parallel = _pad(["    mov r7, r5", "    mov r9, r6"])
    corr_seq, n_samples, curve = _measure(
        "\n".join(sequential), inputs, model, _ISSUE_LAYER, seed=seed,
        chunk_size=chunk_size, jobs=jobs, budgets=budgets, precision=precision,
        backend=backend,
    )
    corr_par, _n, _curve = _measure(
        "\n".join(parallel), inputs, model, _ISSUE_LAYER, seed=seed + 1,
        chunk_size=chunk_size, jobs=jobs, precision=precision, backend=backend,
    )
    return AblationResult(
        name="parallel-shares",
        claim="dual-issuing the shares suppresses the sequential bus collision",
        corr_with=corr_seq,
        corr_without=corr_par,
        threshold=_bonferroni_threshold(n_traces, n_samples),
        curve=curve,
    )


def ablate_scalar_write_port(
    n_traces: int = 2000,
    seed: int = 0x0A60,
    chunk_size: int | None = None,
    jobs: int = 1,
    budgets: tuple[int, ...] | None = None,
    precision: str | None = None,
    backend=None,
) -> AblationResult:
    """[18,19]: the scalar core's single write port combines results.

    This contrast compares two *pipeline models* over one batch, so it
    bypasses the campaign engine; ``chunk_size``/``jobs``/``budgets``
    are accepted for signature uniformity and ignored.
    """
    inputs, secret = _masked_inputs(n_traces, seed)
    model = hamming_weight(secret).astype(np.float64)
    # Two result-producing instructions the A7 dual-issues onto separate
    # write-back ports; the scalar core funnels both through one port.
    lines = _pad(["    mov r7, r5", "    mov r9, r6"])
    source = "\n".join(lines)
    program = assemble(source)

    def measure_on(schedule_cls) -> float:
        from repro.isa.executor import Executor
        from repro.isa.vexec import VectorExecutor
        from repro.power.scope import Oscilloscope

        executor = Executor(program)
        state = executor.fresh_state()
        mem, regs = inputs.row(0)
        for reg, value in regs.items():
            state.regs[reg] = value
        reference = executor.run(state=state)
        pipeline = schedule_cls()
        schedule = pipeline.schedule(reference.records)
        leakage = LeakageSchedule(schedule, pipeline.components, samples_per_cycle=4)
        vexec = VectorExecutor(program, inputs.n_traces)
        vstate = vexec.fresh_state()
        for reg, values in inputs.regs.items():
            vstate.write_reg(reg, values)
        result = vexec.run(state=vstate)
        power = leakage.evaluate(result.table, cortex_a7_profile())
        traces = Oscilloscope(_ablation_scope(precision), seed=seed).capture(power)
        samples = sorted(
            {int(s) for name in _WB_LAYER for s in leakage.sample_positions(name)}
        )
        if not samples:
            return 0.0
        corr = pearson_corr(model.astype(np.float64), traces[:, samples])
        return float(corr[np.argmax(np.abs(corr))])

    corr_scalar = measure_on(ScalarPipeline)
    corr_superscalar = measure_on(Pipeline)
    return AblationResult(
        name="scalar-write-port",
        claim="the scalar core's shared write-back port combines what the A7 separates",
        corr_with=corr_scalar,
        corr_without=corr_superscalar,
        threshold=_bonferroni_threshold(n_traces, 8),
    )


ALL_ABLATIONS = (
    ablate_operand_swap,
    ablate_dual_issue_adjacency,
    ablate_nop_insertion,
    ablate_lsu_remanence,
    ablate_parallel_shares,
    ablate_scalar_write_port,
)


def run_preset_ablations(
    n_traces: int = 1000,
    budgets: tuple[int, ...] | None = None,
    chunk_size: int | None = None,
    jobs: int = 1,
    seed: int = 0x5EEB,
    precision: str | None = None,
    backend=None,
):
    """The §4.2 preset ablation table, rebased onto the sweep engine.

    Historically the five characterized presets could only be evaluated
    one hand-wired campaign at a time; this runs them as the degenerate
    5-point grid of :mod:`repro.sweeps` — per-preset CPA key margin,
    max Welch-t and partition SNR on the round-1 AES workload, computed
    once per point via the snapshot accumulators and ranked against the
    cortex-a7 baseline.  Returns the comparative
    :class:`~repro.sweeps.campaign.SweepResult`.
    """
    from repro.sweeps import SweepCampaign, sweep_ablations_spec

    return SweepCampaign(
        sweep_ablations_spec(),
        n_traces=n_traces,
        budgets=budgets,
        chunk_size=chunk_size,
        jobs=jobs,
        seed=seed,
        precision=precision,
        backend=backend,
    ).run()


def run_all_ablations(
    n_traces: int = 2000,
    chunk_size: int | None = None,
    jobs: int = 1,
    budgets: tuple[int, ...] | None = None,
    precision: str | None = None,
    backend=None,
) -> list[AblationResult]:
    return [
        ablation(
            n_traces=n_traces,
            chunk_size=chunk_size,
            jobs=jobs,
            budgets=budgets,
            precision=precision,
            backend=backend,
        )
        for ablation in ALL_ABLATIONS
    ]


class _AblationSuite:
    """Renderable wrapper so the scenario returns one result object."""

    def __init__(self, results: list[AblationResult], preset_sweep=None):
        self.results = results
        #: the §4.2 preset table as a SweepResult (the degenerate grid)
        self.preset_sweep = preset_sweep

    @property
    def matches_paper(self) -> bool:
        return all(result.demonstrated for result in self.results)

    def to_json(self) -> dict:
        payload = {
            "contrasts": [
                {
                    "name": result.name,
                    "claim": result.claim,
                    "corr_with": round(result.corr_with, 6),
                    "corr_without": round(result.corr_without, 6),
                    "threshold": round(result.threshold, 6),
                    "demonstrated": result.demonstrated,
                }
                for result in self.results
            ],
        }
        if self.preset_sweep is not None:
            payload["preset_sweep"] = self.preset_sweep.to_json()
        return payload

    def artifacts(self) -> dict:
        return {}

    def render(self) -> str:
        text = "\n\n".join(result.render() for result in self.results)
        if self.preset_sweep is not None:
            text += "\n\n" + self.preset_sweep.render()
        return text


def _scenario_runner(request: RunRequest) -> _AblationSuite:
    return _AblationSuite(
        run_all_ablations(
            n_traces=request.n_traces,
            chunk_size=request.chunk_size,
            jobs=request.jobs,
            precision=request.precision,
            backend=request.backend,
        ),
        preset_sweep=run_preset_ablations(
            n_traces=request.n_traces,
            chunk_size=request.chunk_size,
            jobs=request.jobs,
            precision=request.precision,
            backend=request.backend,
            **({} if request.seed is None else {"seed": request.seed}),
        ),
    )


SCENARIO = register(
    Scenario(
        name="ablations",
        title="Section-4.2 ablations: one microarchitectural knob per contrast",
        description=(
            "Six paired campaigns, each demonstrating one share-combining "
            "mechanism (and its suppression) from the paper's Section 4."
        ),
        runner=_scenario_runner,
        default_traces=2000,
        capabilities=frozenset(
            {
                Capability.TRACES,
                Capability.SEED,
                Capability.CHUNKING,
                Capability.JOBS,
                Capability.BACKEND,
                Capability.PRECISION,
            }
        ),
        tags=("ablation",),
    )
)
