"""Table 2: micro-benchmark leakage characterization of the Cortex-A7.

Seven short instruction sequences run with random operands; for every
(component column, model expression) pair of the paper's Table 2 the
harness computes Pearson's correlation between the model and the trace
samples where that component transitions, and classifies the model as
*red* (correlation distinguishable from zero at >99.5% confidence, the
paper's criterion) or *black*.

The expected classification encodes the paper's findings:

* register-file read ports: silent everywhere;
* IS/EX layer: Hamming distances between same-position operands of
  consecutively single-issued instructions are red; operand pairs of a
  dual-issued pair are black; nop interleaving/padding makes operand
  Hamming weights red (the bus is driven to zero by the A7's nop);
* ALU output: HW of the result, red; shifter buffer: HW of the shifted
  operand, red at roughly 1/10 magnitude;
* EX/WB: HD between consecutive results on the same write-back port red
  when single-issued, black when dual-issued; boundary HW entries (the
  paper's dagger) from the nop write-back reset;
* MDR: HD between consecutive full 32-bit words red;
* align buffer: HD between sub-word values red across interleaved word
  accesses (LSU data remanence).

Models whose correlation is mathematically induced by a red model on the
same component (e.g. an addition result versus its own operands) are
marked *dont-care* and excluded from the pass/fail comparison; the
rendered table still reports their measured state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.campaigns.accumulators import OnlineCorrAccumulator
from repro.campaigns.engine import StreamingCampaign
from repro.api.capabilities import Capability
from repro.api.request import RunRequest
from repro.campaigns.registry import Scenario, register
from repro.experiments.reporting import render_table
from repro.isa.parser import assemble
from repro.isa.registers import Reg
from repro.isa.values import ValueKind
from repro.power.acquisition import BatchInputs
from repro.power.profile import LeakageProfile, cortex_a7_profile
from repro.power.scope import ScopeConfig
from repro.sca.stats import pearson_corr, significance_threshold
from repro.uarch.config import PipelineConfig

# ----------------------------------------------------------------------
# Declarative specification of the seven benchmarks
# ----------------------------------------------------------------------

RED, BLACK, DONT_CARE = "red", "black", "dont-care"

#: Table-2 column -> tracked component names
COLUMN_COMPONENTS: dict[str, tuple[str, ...]] = {
    "Register File": ("rf_rp1", "rf_rp2", "rf_rp3"),
    "Is/Ex Buffer": (
        "issue_op1_s0",
        "issue_op2_s0",
        "issue_op1_s1",
        "issue_op2_s1",
        "alu0_in_op1",
        "alu0_in_op2",
        "alu1_in_op1",
        "alu1_in_op2",
        "lsu_in_op2",
    ),
    "Shift Buffer": ("shift_buf",),
    "ALU Buffer": ("alu0_out", "alu1_out"),
    "Ex/Wb Buffer": ("wb_bus0", "wb_bus1"),
    "MDR": ("mdr",),
    "Align Buffer": ("align_load", "align_store"),
}

TABLE2_COLUMNS = tuple(COLUMN_COMPONENTS)


@dataclass(frozen=True)
class ModelSpec:
    """One tested model expression of one Table-2 cell."""

    column: str
    label: str
    #: (sequence position, value kind); one ref = HW model, two refs = HD
    refs: tuple[tuple[int, ValueKind], ...]
    expect: str
    boundary: bool = False  # the paper's dagger: due to nop pipeline flushes


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Table 2."""

    name: str
    description: str
    sequence: tuple[str, ...]
    dual_expected: bool
    models: tuple[ModelSpec, ...]
    #: registers loaded with uniform random words
    random_regs: tuple[Reg, ...] = ()
    #: register -> buffer name; loaded with the buffer address (plus a
    #: random word-aligned offset when ``randomize_pointers``)
    pointer_regs: dict[Reg, str] = field(default_factory=dict)
    randomize_pointers: bool = True
    #: (dest, source): dest pre-charged with source's value, following the
    #: paper's precaution of pre-charging destination registers
    precharge: tuple[tuple[Reg, Reg], ...] = ()


def _hw(column: str, label: str, pos: int, kind: ValueKind, expect: str, boundary=False):
    return ModelSpec(column, label, ((pos, kind),), expect, boundary)


def _hd(column: str, label: str, a: tuple[int, ValueKind], b: tuple[int, ValueKind], expect: str):
    return ModelSpec(column, label, (a, b), expect)


R = ValueKind.RESULT
O1, O2 = ValueKind.OP1, ValueKind.OP2
SH = ValueKind.SHIFTED
SD = ValueKind.STORE_DATA
MW = ValueKind.MEM_WORD
SW = ValueKind.SUB_WORD
BASE = ValueKind.BASE


def benchmark_specs() -> tuple[BenchmarkSpec, ...]:
    """The seven rows of Table 2."""
    return (
        BenchmarkSpec(
            name="row1-mov-nop-mov",
            description="mov rA,rB; nop; mov rC,rD",
            sequence=("mov r1, r2", "nop", "mov r3, r4"),
            dual_expected=False,
            random_regs=(Reg.R2, Reg.R4),
            precharge=((Reg.R1, Reg.R2), (Reg.R3, Reg.R4)),
            models=(
                _hw("Register File", "rB", 0, O2, BLACK),
                _hw("Register File", "rD", 2, O2, BLACK),
                _hw("Is/Ex Buffer", "rB", 0, O2, RED),
                _hw("Is/Ex Buffer", "rD", 2, O2, RED),
                _hd("Is/Ex Buffer", "rB^rD", (0, O2), (2, O2), RED),
                _hw("Ex/Wb Buffer", "rB!", 0, R, RED, boundary=True),
                _hw("Ex/Wb Buffer", "rD!", 2, R, RED, boundary=True),
                _hd("Ex/Wb Buffer", "rB^rD", (0, R), (2, R), BLACK),
            ),
        ),
        BenchmarkSpec(
            name="row2-add-add",
            description="add rA,rB,rC; add rD,rE,rF (single-issued)",
            sequence=("add r1, r2, r3", "add r4, r5, r6"),
            dual_expected=False,
            random_regs=(Reg.R2, Reg.R3, Reg.R5, Reg.R6),
            models=(
                _hw("Register File", "rB", 0, O1, BLACK),
                _hw("Register File", "rC", 0, O2, BLACK),
                _hw("Register File", "rE", 1, O1, BLACK),
                _hw("Register File", "rF", 1, O2, BLACK),
                _hw("Is/Ex Buffer", "rB!", 0, O1, RED, boundary=True),
                _hw("Is/Ex Buffer", "rC!", 0, O2, RED, boundary=True),
                _hw("Is/Ex Buffer", "rE!", 1, O1, RED, boundary=True),
                _hw("Is/Ex Buffer", "rF!", 1, O2, RED, boundary=True),
                _hd("Is/Ex Buffer", "rB^rE", (0, O1), (1, O1), RED),
                _hd("Is/Ex Buffer", "rC^rF", (0, O2), (1, O2), RED),
                _hw("ALU Buffer", "rA", 0, R, RED),
                _hw("ALU Buffer", "rD", 1, R, RED),
                _hw("ALU Buffer", "rB", 0, O1, DONT_CARE),
                _hw("ALU Buffer", "rE", 1, O1, DONT_CARE),
                _hw("Ex/Wb Buffer", "rA!", 0, R, RED, boundary=True),
                _hw("Ex/Wb Buffer", "rD!", 1, R, RED, boundary=True),
                _hd("Ex/Wb Buffer", "rA^rD", (0, R), (1, R), RED),
            ),
        ),
        BenchmarkSpec(
            name="row3-add-addimm-dual",
            description="add rA,rB,rC; add rD,rE,#n (dual-issued)",
            sequence=("add r1, r2, r3", "add r4, r5, #77"),
            dual_expected=True,
            random_regs=(Reg.R2, Reg.R3, Reg.R5),
            models=(
                _hw("Register File", "rB", 0, O1, BLACK),
                _hw("Register File", "rC", 0, O2, BLACK),
                _hw("Register File", "rE", 1, O1, BLACK),
                _hw("Is/Ex Buffer", "rB!", 0, O1, RED, boundary=True),
                _hw("Is/Ex Buffer", "rC!", 0, O2, RED, boundary=True),
                _hw("Is/Ex Buffer", "rE!", 1, O1, RED, boundary=True),
                _hd("Is/Ex Buffer", "rB^rE", (0, O1), (1, O1), BLACK),
                _hd("Is/Ex Buffer", "rC^rE", (0, O2), (1, O1), BLACK),
                _hw("ALU Buffer", "rA", 0, R, RED),
                _hw("ALU Buffer", "rD", 1, R, RED),
                _hw("Ex/Wb Buffer", "rA!", 0, R, RED, boundary=True),
                _hw("Ex/Wb Buffer", "rD!", 1, R, RED, boundary=True),
                _hd("Ex/Wb Buffer", "rA^rD", (0, R), (1, R), BLACK),
            ),
        ),
        BenchmarkSpec(
            name="row4-add-shift",
            description="add rA,rB,rC,lsl n; add rD,rE,rF,lsl n (single-issued)",
            sequence=("add r1, r2, r3, lsl #5", "add r4, r5, r6, lsl #5"),
            dual_expected=False,
            random_regs=(Reg.R2, Reg.R3, Reg.R5, Reg.R6),
            models=(
                _hw("Register File", "rB", 0, O1, BLACK),
                _hw("Register File", "rC", 0, O2, BLACK),
                _hd("Is/Ex Buffer", "rB^rE", (0, O1), (1, O1), RED),
                _hd("Is/Ex Buffer", "rC^rF", (0, O2), (1, O2), RED),
                _hw("Shift Buffer", "rC<<n", 0, SH, RED),
                _hw("Shift Buffer", "rF<<n", 1, SH, RED),
                _hw("ALU Buffer", "rA", 0, R, RED),
                _hw("ALU Buffer", "rD", 1, R, RED),
                _hw("ALU Buffer", "rB", 0, O1, DONT_CARE),
                _hw("ALU Buffer", "rE", 1, O1, DONT_CARE),
                _hw("Ex/Wb Buffer", "rA!", 0, R, RED, boundary=True),
                _hw("Ex/Wb Buffer", "rD!", 1, R, RED, boundary=True),
                _hd("Ex/Wb Buffer", "rA^rD", (0, R), (1, R), RED),
            ),
        ),
        BenchmarkSpec(
            name="row5-ldr-ldr",
            description="ldr rA,[rB]; ldr rC,[rD] (single-issued)",
            sequence=("ldr r1, [r9]", "ldr r3, [r10]"),
            dual_expected=False,
            pointer_regs={Reg.R9: "buf_a", Reg.R10: "buf_b"},
            models=(
                _hw("Register File", "rB", 0, BASE, BLACK),
                _hw("Register File", "rD", 1, BASE, BLACK),
                _hw("Ex/Wb Buffer", "rA!", 0, R, RED, boundary=True),
                _hw("Ex/Wb Buffer", "rC!", 1, R, RED, boundary=True),
                _hd("Ex/Wb Buffer", "rA^rC", (0, R), (1, R), RED),
                _hd("MDR", "rA^rC", (0, MW), (1, MW), RED),
            ),
        ),
        BenchmarkSpec(
            name="row6-str-str",
            description="str rA,[rB]; str rC,[rD] (single-issued)",
            sequence=("str r1, [r9]", "str r3, [r10]"),
            dual_expected=False,
            random_regs=(Reg.R1, Reg.R3),
            pointer_regs={Reg.R9: "buf_a", Reg.R10: "buf_b"},
            models=(
                _hw("Register File", "rB", 0, BASE, BLACK),
                _hw("Register File", "rD", 1, BASE, BLACK),
                _hw("Is/Ex Buffer", "rA!", 0, SD, RED, boundary=True),
                _hw("Is/Ex Buffer", "rC!", 1, SD, RED, boundary=True),
                _hd("Is/Ex Buffer", "rA^rC", (0, SD), (1, SD), RED),
                _hw("Ex/Wb Buffer", "rA!", 0, SD, RED, boundary=True),
                _hw("Ex/Wb Buffer", "rC!", 1, SD, RED, boundary=True),
                _hd("Ex/Wb Buffer", "rA^rC", (0, SD), (1, SD), RED),
                _hd("MDR", "rA^rC", (0, MW), (1, MW), RED),
            ),
        ),
        BenchmarkSpec(
            name="row7-ldr-ldrb-interleave",
            description="ldr rA,[rB]; ldrb rC,[rD]; ldr rE,[rF]; ldrb rG,[rH]",
            sequence=(
                "ldr r1, [r9]",
                "ldrb r3, [r10]",
                "ldr r5, [r11]",
                "ldrb r7, [r12]",
            ),
            dual_expected=False,
            pointer_regs={
                Reg.R9: "buf_a",
                Reg.R10: "buf_b",
                Reg.R11: "buf_c",
                Reg.R12: "buf_d",
            },
            models=(
                _hw("Register File", "rA", 0, R, BLACK),
                _hw("Register File", "rC", 1, R, BLACK),
                _hw("Ex/Wb Buffer", "rA!", 0, R, RED, boundary=True),
                _hw("Ex/Wb Buffer", "rC!", 1, R, RED, boundary=True),
                _hw("Ex/Wb Buffer", "rE!", 2, R, RED, boundary=True),
                _hw("Ex/Wb Buffer", "rG!", 3, R, RED, boundary=True),
                _hd("MDR", "rA^rC(w)", (0, MW), (1, MW), RED),
                _hd("MDR", "rC^rE(w)", (1, MW), (2, MW), RED),
                _hd("MDR", "rE^rG(w)", (2, MW), (3, MW), RED),
                _hd("Align Buffer", "rC^rG", (1, SW), (3, SW), RED),
                _hd("Align Buffer", "rA^rC", (0, R), (1, SW), BLACK),
            ),
        ),
    )


# ----------------------------------------------------------------------
# Program construction
# ----------------------------------------------------------------------

_BUFFERS = {"buf_a": 0x30000, "buf_b": 0x30100, "buf_c": 0x30200, "buf_d": 0x30300}
_BUFFER_SIZE = 64


def benchmark_source(spec: BenchmarkSpec, pad_nops: int = 16) -> str:
    """Assembly for one Table-2 micro-benchmark run."""
    lines: list[str] = []
    for reg, buffer in sorted(spec.pointer_regs.items()):
        lines.append(f"    ldr {Reg(reg)}, ={buffer}")  # 2 instructions each
    lines.extend(["    nop"] * pad_nops)
    lines.append("bench_start:")
    lines.extend(f"    {instr}" for instr in spec.sequence)
    lines.append("bench_end:")
    lines.extend(["    nop"] * pad_nops)
    lines.append("    bx lr")
    for name, address in _BUFFERS.items():
        lines.append(f"    .org {address:#x}")
        lines.append(f"{name}:")
        lines.append(f"    .space {_BUFFER_SIZE}")
    return "\n".join(lines)


def benchmark_inputs(spec: BenchmarkSpec, n_traces: int, seed: int) -> BatchInputs:
    """Random operands, pointer registers and buffer contents."""
    rng = np.random.default_rng(seed)
    regs: dict[Reg, np.ndarray] = {}
    for reg in spec.random_regs:
        regs[reg] = rng.integers(0, 2**32, size=n_traces, dtype=np.uint64).astype(np.uint32)
    for reg, buffer in spec.pointer_regs.items():
        base = _BUFFERS[buffer]
        if spec.randomize_pointers:
            offsets = (rng.integers(0, _BUFFER_SIZE // 4, size=n_traces, dtype=np.uint32) * 4).astype(
                np.uint32
            )
        else:
            offsets = np.zeros(n_traces, dtype=np.uint32)
        regs[reg] = (np.uint32(base) + offsets).astype(np.uint32)
    for dest, source in spec.precharge:
        regs[dest] = regs[source].copy()
    mem = {
        address: rng.integers(0, 256, size=(n_traces, _BUFFER_SIZE), dtype=np.uint16).astype(
            np.uint8
        )
        for address in _BUFFERS.values()
    }
    return BatchInputs(n_traces=n_traces, regs=regs, mem_bytes=mem)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------


@dataclass
class ModelOutcome:
    """Measured state of one tested model."""

    spec: ModelSpec
    peak_corr: float
    threshold: float

    @property
    def measured(self) -> str:
        return RED if abs(self.peak_corr) > self.threshold else BLACK

    @property
    def agrees(self) -> bool:
        if self.spec.expect == DONT_CARE:
            return True
        return self.measured == self.spec.expect


@dataclass
class BenchmarkOutcome:
    spec: BenchmarkSpec
    dual_measured: bool
    outcomes: list[ModelOutcome]

    @property
    def agrees(self) -> bool:
        return (
            all(outcome.agrees for outcome in self.outcomes)
            and self.dual_measured == self.spec.dual_expected
        )


@dataclass
class Table2Result:
    benchmarks: list[BenchmarkOutcome]
    n_traces: int
    shift_magnitude_ratio: float | None = None

    @property
    def matches_paper(self) -> bool:
        return all(b.agrees for b in self.benchmarks)

    def to_json(self) -> dict:
        return {
            "n_traces": self.n_traces,
            "shift_magnitude_ratio": self.shift_magnitude_ratio,
            "disagreements": self.disagreements(),
            "benchmarks": [
                {
                    "name": bench.spec.name,
                    "dual_measured": bench.dual_measured,
                    "dual_expected": bench.spec.dual_expected,
                    "cells": [
                        {
                            "component": outcome.spec.column,
                            "model": outcome.spec.label,
                            "peak_corr": round(outcome.peak_corr, 6),
                            "threshold": round(outcome.threshold, 6),
                            "expected": outcome.spec.expect,
                            "measured": outcome.measured,
                            "agrees": outcome.agrees,
                        }
                        for outcome in bench.outcomes
                    ],
                }
                for bench in self.benchmarks
            ],
        }

    def artifacts(self) -> dict:
        return {}

    def disagreements(self) -> list[str]:
        out = []
        for bench in self.benchmarks:
            if bench.dual_measured != bench.spec.dual_expected:
                out.append(f"{bench.spec.name}: dual-issue {bench.dual_measured}")
            for outcome in bench.outcomes:
                if not outcome.agrees:
                    out.append(
                        f"{bench.spec.name}/{outcome.spec.column}/{outcome.spec.label}: "
                        f"measured {outcome.measured} (r={outcome.peak_corr:+.3f}, "
                        f"thr={outcome.threshold:.3f}), expected {outcome.spec.expect}"
                    )
        return out

    def render(self) -> str:
        parts = ["Table 2 (reproduced): leakage characterization", ""]
        for bench in self.benchmarks:
            parts.append(
                f"{bench.spec.description}  "
                f"[dual-issued: {'yes' if bench.dual_measured else 'no'}"
                f" (paper: {'yes' if bench.spec.dual_expected else 'no'})]"
            )
            rows = []
            for outcome in bench.outcomes:
                mark = {
                    (RED, True): "RED  (matches)",
                    (BLACK, True): "black (matches)",
                    (RED, False): "RED  (MISMATCH)",
                    (BLACK, False): "black (MISMATCH)",
                }[(outcome.measured, outcome.agrees)]
                expected = outcome.spec.expect + (" (dagger)" if outcome.spec.boundary else "")
                rows.append(
                    [
                        outcome.spec.column,
                        outcome.spec.label,
                        f"{outcome.peak_corr:+.3f}",
                        f"{outcome.threshold:.3f}",
                        expected,
                        mark,
                    ]
                )
            parts.append(
                render_table(
                    ["component", "model", "peak r", "threshold", "paper", "measured"], rows
                )
            )
            parts.append("")
        if self.shift_magnitude_ratio is not None:
            parts.append(
                "shifter-buffer magnitude ratio vs ALU leakage: "
                f"{self.shift_magnitude_ratio:.2f} (paper: about 1/10)"
            )
        verdict = "MATCH" if self.matches_paper else "MISMATCHES:\n  " + "\n  ".join(
            self.disagreements()
        )
        parts.append(f"paper comparison: {verdict}")
        return "\n".join(parts)


def _model_values(table, bench_base: int, refs, n_traces: int) -> np.ndarray:
    """HW (one ref) or HD (two refs) model values over the batch."""
    arrays = []
    for pos, kind in refs:
        values = table.values(bench_base + pos, kind)
        if values is None:
            values = np.zeros(n_traces, dtype=np.uint32)
        arrays.append(values.astype(np.uint32))
    if len(arrays) == 1:
        return np.bitwise_count(arrays[0]).astype(np.float64)
    return np.bitwise_count(arrays[0] ^ arrays[1]).astype(np.float64)


def _model_samples(leakage, components, bench_base: int, refs, extend: bool = True) -> np.ndarray:
    """Samples where the model's referenced values transition.

    For every column component, every event referencing one of the
    model's values contributes its own sample and (when ``extend``) the
    next event's sample on that component — the instant the value is
    replaced, where a Hamming-distance leak of it appears.  The
    extension is skipped for the register-file column: its ports carry
    no transition leakage to chase, and the extra sample would only pick
    up co-located activity of other structures.
    """
    wanted = {(bench_base + pos, kind) for pos, kind in refs}
    samples: set[int] = set()
    for name in components:
        events = leakage.events_of(name)
        positions = leakage.sample_positions(name)
        for index, (cycle, dyn, kind) in enumerate(events):
            if (dyn, kind) in wanted:
                samples.add(int(positions[index]))
                if extend and index + 1 < len(events):
                    samples.add(int(positions[index + 1]))
    return np.array(sorted(samples), dtype=np.int64)


def table2_scope() -> ScopeConfig:
    """Scope settings for the characterization (sharp response kernel)."""
    return ScopeConfig(noise_sigma=8.0, kernel=(1.0,), n_averages=16, quantize_bits=8)


def run_table2(
    n_traces: int = 2000,
    config: PipelineConfig | None = None,
    profile: LeakageProfile | None = None,
    seed: int = 0x7AB1E2,
    confidence: float = 0.995,
    chunk_size: int | None = None,
    jobs: int = 1,
    backend=None,
) -> Table2Result:
    """Run all seven benchmarks and classify every model expression.

    With ``chunk_size`` set each benchmark campaign streams through the
    engine; every (component, model) correlation folds chunk by chunk in
    an :class:`OnlineCorrAccumulator`.  The default monolithic path
    keeps the historical numerics.
    """
    config = config if config is not None else PipelineConfig()
    profile = profile if profile is not None else cortex_a7_profile()
    threshold = significance_threshold(n_traces, confidence)
    outcomes: list[BenchmarkOutcome] = []
    shift_peaks: list[float] = []
    alu_peaks: list[float] = []

    for row, spec in enumerate(benchmark_specs()):
        program = assemble(benchmark_source(spec))
        inputs = benchmark_inputs(spec, n_traces, seed + row)
        engine = StreamingCampaign(
            program,
            config=config,
            profile=profile,
            scope=table2_scope(),
            seed=seed + 31 * row,
            chunk_size=chunk_size,
            jobs=jobs,
            backend=backend,
        )
        _path, schedule, leakage = engine.compiled(inputs)
        bench_base = program.instruction_at(program.label_address("bench_start")).index
        model_samples = [
            _model_samples(
                leakage,
                COLUMN_COMPONENTS[model.column],
                bench_base,
                model.refs,
                extend=model.column != "Register File",
            )
            for model in spec.models
        ]

        peaks: list[float]
        if chunk_size is None:
            trace_set = engine.acquire(inputs)
            peaks = []
            for model, samples in zip(spec.models, model_samples):
                if samples.size == 0:
                    peaks.append(0.0)
                    continue
                values = _model_values(trace_set.table, bench_base, model.refs, n_traces)
                corr = pearson_corr(values, trace_set.traces[:, samples])
                peaks.append(float(corr[np.argmax(np.abs(corr))]))
        else:
            accumulators = [OnlineCorrAccumulator() for _ in spec.models]
            for chunk in engine.stream(inputs):
                for model, samples, accumulator in zip(
                    spec.models, model_samples, accumulators
                ):
                    if samples.size == 0:
                        continue
                    values = _model_values(
                        chunk.trace_set.table, bench_base, model.refs, chunk.n_traces
                    )
                    accumulator.update(values, chunk.traces[:, samples])
            peaks = []
            for samples, accumulator in zip(model_samples, accumulators):
                if samples.size == 0:
                    peaks.append(0.0)
                    continue
                corr = accumulator.correlations()
                peaks.append(float(corr[np.argmax(np.abs(corr))]))

        model_outcomes = []
        for model, peak in zip(spec.models, peaks):
            outcome = ModelOutcome(spec=model, peak_corr=peak, threshold=threshold)
            model_outcomes.append(outcome)
            if model.column == "Shift Buffer" and model.expect == RED:
                shift_peaks.append(abs(peak))
            if model.column == "ALU Buffer" and model.expect == RED:
                alu_peaks.append(abs(peak))

        bench_dyn = range(bench_base, bench_base + len(spec.sequence))
        dual_measured = any(schedule.dual[d] for d in bench_dyn)
        outcomes.append(
            BenchmarkOutcome(spec=spec, dual_measured=dual_measured, outcomes=model_outcomes)
        )

    ratio = None
    if shift_peaks and alu_peaks:
        ratio = float(np.mean(shift_peaks) / np.mean(alu_peaks))
    return Table2Result(benchmarks=outcomes, n_traces=n_traces, shift_magnitude_ratio=ratio)


def _scenario_runner(request: RunRequest) -> Table2Result:
    kwargs = {} if request.seed is None else {"seed": request.seed}
    if request.config is not None:
        kwargs["config"] = request.config
    return run_table2(
        n_traces=request.n_traces,
        chunk_size=request.chunk_size,
        jobs=request.jobs,
        backend=request.backend,
        **kwargs,
    )


SCENARIO = register(
    Scenario(
        name="table2",
        title="Table 2: micro-benchmark leakage characterization",
        description=(
            "Seven instruction-sequence benchmarks; every (component, model) "
            "cell classified red/black at >99.5% confidence."
        ),
        runner=_scenario_runner,
        default_traces=3000,
        capabilities=frozenset(
            {
                Capability.TRACES,
                Capability.SEED,
                Capability.CHUNKING,
                Capability.JOBS,
                Capability.BACKEND,
                Capability.PIPELINE_CONFIG,
            }
        ),
        tags=("characterization",),
    )
)
