"""Experiment drivers: one module per table/figure of the paper.

Each module exposes a ``run_*`` function returning a result object with
a ``render()`` (human-readable reproduction of the table/figure) and a
``matches_paper()`` shape check, plus the module-level constants
recording what the paper reports.  The ``benchmarks/`` tree calls these
drivers; ``EXPERIMENTS.md`` records their output.
"""

from repro.experiments.table1 import run_table1
from repro.experiments.figure2 import run_figure2
from repro.experiments.table2 import run_table2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4

__all__ = ["run_figure2", "run_figure3", "run_figure4", "run_table1", "run_table2"]
