"""Command-line interface: a thin shell client of :mod:`repro.api`.

The CLI only parses arguments into a
:class:`~repro.api.request.RunRequest`, dispatches it through a
:class:`~repro.api.session.Session`, and prints the returned
:class:`~repro.api.envelope.Envelope` — there is no per-experiment
wiring and no scenario-specific logic here.

Usage::

    python -m repro table1
    python -m repro figure3   [--traces 3000] [--chunk-size 500] [--jobs 4]
    python -m repro table2    [--traces 3000] [--seed 7]
    python -m repro all       [--format json]

Flags:

``--traces N``
    Trace-budget override for statistical scenarios (each scenario has
    its own default).
``--reps N``
    Microbenchmark repetitions for the CPI scenarios (table1, figure2).
``--chunk-size N``
    Stream the campaign through the engine in chunks of ``N`` traces
    (constant memory).  Default: one monolithic chunk.
``--jobs N``
    Fan chunks out over ``N`` worker processes.
``--backend serial|fork|spawn|auto``
    Execution backend for the fan-out (see ``docs/backends.md``).  The
    default ``auto`` forks where available and falls back to spawn;
    every backend is byte-identical to ``serial`` for float32
    campaigns.
``--seed N``
    Campaign seed override, for independent re-runs of a scenario.
``--precision float64-exact|float32``
    Acquisition-chain precision: ``float32`` runs the counter-based
    high-throughput capture chain; ``float64-exact`` (each scenario's
    default) keeps the bit-exact historical chain.
``--grid key=val[,val...]``
    One design-space axis for grid-aware scenarios (``sweep``); repeat
    the flag for a multi-axis grid, or pass a curated grid name
    (``--grid noise-floor``).  See ``docs/sweeps.md``.
``--format json|text``
    ``text`` (default) prints each scenario's rendered report;
    ``json`` emits an array of schema-versioned result envelopes
    (``repro.envelope/1``, see ``docs/api.md``).  A scenario that
    crashes contributes an error envelope instead of silencing the
    reports collected before it; the exit status stays non-zero.

A knob the chosen scenario cannot honor is a hard usage error (exit
status 2) — the scenario's declared capabilities decide, not a
hand-maintained flag table.  Only ``all`` narrows the knob set per
scenario (with a note on stderr), since one flag set fans out over
scenarios with different capabilities.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def build_parser() -> argparse.ArgumentParser:
    # known_names() is import-light: the numpy/scipy-heavy experiment
    # modules only load once a scenario actually runs (in main()).
    from repro.campaigns.registry import known_names

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of Barenghi & Pelosi (DAC 2018).",
    )
    parser.add_argument(
        "experiment",
        choices=known_names() + ["all"],
        help="which scenario to run, or 'all' for every registered scenario",
    )
    parser.add_argument(
        "--traces", type=int, default=None, help="trace count override (statistical experiments)"
    )
    parser.add_argument(
        "--reps", type=int, default=None, help="microbenchmark repetitions (CPI experiments)"
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="stream campaigns in chunks of this many traces (constant memory)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for chunk fan-out (with --chunk-size)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "fork", "spawn"),
        default=None,
        help="execution backend for the worker fan-out (default: auto)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="campaign seed override"
    )
    parser.add_argument(
        "--precision",
        choices=("float64-exact", "float32"),
        default=None,
        help="acquisition-chain precision (default: the scenario's own)",
    )
    parser.add_argument(
        "--grid",
        action="append",
        default=None,
        metavar="KEY=VAL[,VAL...]",
        help=(
            "design-space axis for grid-aware scenarios (repeatable), "
            "or a curated grid name"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    return parser


def _build_request(parser: argparse.ArgumentParser, args: argparse.Namespace):
    from repro.api import RunRequest

    try:
        return RunRequest(
            n_traces=args.traces,
            reps=args.reps,
            chunk_size=args.chunk_size,
            jobs=args.jobs,
            backend=args.backend,
            seed=args.seed,
            precision=args.precision,
            grid=tuple(args.grid) if args.grid else None,
        )
    except ValueError as error:
        parser.error(str(error))


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    request = _build_request(parser, args)

    from repro.api import CapabilityError, Envelope, Session
    from repro.api.capabilities import KNOB_FLAGS
    from repro.campaigns import registry

    session = Session()
    run_all = args.experiment == "all"
    chosen = registry.names() if run_all else [args.experiment]
    if not run_all:
        try:
            request.validate(registry.get(args.experiment))
        except CapabilityError as error:
            parser.error(error.cli_message())

    records = []
    failures = 0
    for name in chosen:
        scenario = registry.get(name)
        scenario_request = request
        if run_all:
            scenario_request, dropped = request.narrowed_to(scenario)
            for knob in dropped:
                print(
                    f"note: {name} does not support {KNOB_FLAGS[knob]}; ignoring it",
                    file=sys.stderr,
                )
        start = time.time()
        try:
            envelope = session.run(name, scenario_request)
            record = envelope.to_json()
        except Exception as error:  # noqa: BLE001 - isolate per scenario
            # One crashing scenario must not lose every report collected
            # before it (historically --format json buffered everything
            # and the traceback replaced the output entirely).
            failures += 1
            message = f"{type(error).__name__}: {error}"
            envelope = Envelope.failure(
                scenario=name,
                title=scenario.title,
                seconds=time.time() - start,
                error=message,
            )
            record = envelope.to_json()
            print(f"error: scenario {name} failed: {message}", file=sys.stderr)
        if args.format == "json":
            records.append(record)
        else:
            print(f"==== {name} ({envelope.seconds:.1f}s) ====")
            print(envelope.render())
            print()
    if args.format == "json":
        print(json.dumps(records, indent=2))
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
