"""Command-line interface: run any registered scenario from a shell.

The CLI is a thin front-end over the scenario registry
(:mod:`repro.campaigns.registry`): every table/figure reproduction and
every future workload registers a :class:`~repro.campaigns.registry.Scenario`,
and the CLI enumerates them — there is no per-experiment wiring here.

Usage::

    python -m repro table1
    python -m repro figure3   [--traces 3000] [--chunk-size 500] [--jobs 4]
    python -m repro table2    [--traces 3000] [--seed 7]
    python -m repro all       [--format json]

Flags:

``--traces N``
    Trace-budget override for statistical scenarios (each scenario has
    its own default; timing-only scenarios ignore it).
``--reps N``
    Microbenchmark repetitions for the CPI scenarios (table1, figure2).
``--chunk-size N``
    Stream the campaign through the engine in chunks of ``N`` traces
    (constant memory); scenarios that need the whole matrix resident
    ignore it.  Default: one monolithic chunk.
``--jobs N``
    Fan chunks out over ``N`` worker processes (requires ``fork``).
``--seed N``
    Campaign seed override, for independent re-runs of a scenario.
``--precision float64-exact|float32``
    Acquisition-chain precision: ``float32`` runs the counter-based
    high-throughput capture chain; ``float64-exact`` (each scenario's
    default) keeps the bit-exact historical chain.
``--grid key=val[,val...]``
    One design-space axis for grid-aware scenarios (``sweep``); repeat
    the flag for a multi-axis grid, or pass a curated grid name
    (``--grid noise-floor``).  See ``docs/sweeps.md``.
``--format json|text``
    ``text`` (default) prints each scenario's rendered report;
    ``json`` emits a machine-readable array with name, wall time,
    ``matches_paper`` verdict and the rendered output.  A scenario
    that crashes contributes an error record instead of silencing the
    reports collected before it; the exit status stays non-zero.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def build_parser() -> argparse.ArgumentParser:
    # known_names() is import-light: the numpy/scipy-heavy experiment
    # modules only load once a scenario actually runs (in main()).
    from repro.campaigns.registry import known_names

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of Barenghi & Pelosi (DAC 2018).",
    )
    parser.add_argument(
        "experiment",
        choices=known_names() + ["all"],
        help="which scenario to run, or 'all' for every registered scenario",
    )
    parser.add_argument(
        "--traces", type=int, default=None, help="trace count override (statistical experiments)"
    )
    parser.add_argument(
        "--reps", type=int, default=200, help="microbenchmark repetitions (CPI experiments)"
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="stream campaigns in chunks of this many traces (constant memory)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for chunk fan-out (with --chunk-size)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="campaign seed override"
    )
    parser.add_argument(
        "--precision",
        choices=("float64-exact", "float32"),
        default=None,
        help="acquisition-chain precision (default: the scenario's own)",
    )
    parser.add_argument(
        "--grid",
        action="append",
        default=None,
        metavar="KEY=VAL[,VAL...]",
        help=(
            "design-space axis for grid-aware scenarios (repeatable), "
            "or a curated grid name"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.traces is not None and args.traces <= 0:
        parser.error(f"--traces must be positive, got {args.traces}")
    if args.chunk_size is not None and args.chunk_size <= 0:
        parser.error(f"--chunk-size must be positive, got {args.chunk_size}")
    if args.jobs < 1:
        parser.error(f"--jobs must be at least 1, got {args.jobs}")
    if args.seed is not None and args.seed < 0:
        parser.error(f"--seed must be non-negative, got {args.seed}")
    from repro.campaigns import registry
    from repro.campaigns.registry import RunOptions

    chosen = registry.names() if args.experiment == "all" else [args.experiment]
    options = RunOptions(
        n_traces=args.traces,
        reps=args.reps,
        chunk_size=args.chunk_size,
        jobs=args.jobs,
        seed=args.seed,
        precision=args.precision,
        grid=tuple(args.grid) if args.grid else None,
    )
    reports = []
    failures = 0
    for name in chosen:
        scenario = registry.get(name)
        if options.chunk_size is not None and not scenario.supports_chunking:
            print(
                f"note: {name} does not support --chunk-size; running its"
                " standard (monolithic) path",
                file=sys.stderr,
            )
        if options.jobs > 1 and not scenario.supports_jobs:
            print(
                f"note: {name} does not support --jobs; running single-process",
                file=sys.stderr,
            )
        if options.precision is not None and not scenario.supports_precision:
            print(
                f"note: {name} does not support --precision; running its"
                " standard chain",
                file=sys.stderr,
            )
        if options.grid is not None and not scenario.supports_grid:
            print(
                f"note: {name} does not support --grid; ignoring it",
                file=sys.stderr,
            )
        start = time.time()
        try:
            result = scenario.run(options)
            rendered = result.render()
            matches = getattr(result, "matches_paper", None)
            data_fn = getattr(result, "to_json", None)
            data = data_fn() if callable(data_fn) else None
        except Exception as error:  # noqa: BLE001 - isolate per scenario
            # One crashing scenario must not lose every report collected
            # before it (historically --format json buffered everything
            # and the traceback replaced the output entirely).
            failures += 1
            elapsed = time.time() - start
            message = f"{type(error).__name__}: {error}"
            if args.format == "json":
                reports.append(
                    {
                        "scenario": name,
                        "title": scenario.title,
                        "seconds": round(elapsed, 3),
                        "matches_paper": None,
                        "error": message,
                    }
                )
            else:
                print(f"==== {name} ({elapsed:.1f}s) ====")
                print(f"ERROR: {message}")
                print()
            print(f"error: scenario {name} failed: {message}", file=sys.stderr)
            continue
        elapsed = time.time() - start
        if args.format == "json":
            report = {
                "scenario": name,
                "title": scenario.title,
                "seconds": round(elapsed, 3),
                "matches_paper": matches,
                "output": rendered,
            }
            if data is not None:
                report["data"] = data
            reports.append(report)
        else:
            print(f"==== {name} ({elapsed:.1f}s) ====")
            print(rendered)
            print()
    if args.format == "json":
        print(json.dumps(reports, indent=2))
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
