"""Command-line interface: a thin shell client of :mod:`repro.api`.

The CLI only parses arguments into a
:class:`~repro.api.request.RunRequest`, dispatches it through a
:class:`~repro.api.session.Session`, and prints the returned
:class:`~repro.api.envelope.Envelope` — there is no per-experiment
wiring and no scenario-specific logic here.

Usage::

    python -m repro table1
    python -m repro figure3   [--traces 3000] [--chunk-size 500] [--jobs 4]
    python -m repro table2    [--traces 3000] [--seed 7]
    python -m repro all       [--format json]
    python -m repro serve     [--port 8737] [--workers 2] [--spool DIR]
    python -m repro corpus run manifest.yaml [--store DIR] [--force]

``repro serve`` starts the HTTP/JSON leakage-evaluation service (its
own flag set; see :mod:`repro.service.cli` and ``docs/service.md``).
``repro corpus run``/``repro corpus list`` are the batch front-end of
the workload corpus (their own flag set; see :mod:`repro.corpus.cli`
and ``docs/corpus.md``); ``repro corpus --manifest PATH`` runs the same
batch through the generic scenario path below.

Flags:

``--traces N``
    Trace-budget override for statistical scenarios (each scenario has
    its own default).
``--reps N``
    Microbenchmark repetitions for the CPI scenarios (table1, figure2).
``--chunk-size N``
    Stream the campaign through the engine in chunks of ``N`` traces
    (constant memory).  Default: one monolithic chunk.
``--jobs N``
    Fan chunks out over ``N`` worker processes.
``--backend serial|fork|spawn|auto``
    Execution backend for the fan-out (see ``docs/backends.md``).  The
    default ``auto`` forks where available and falls back to spawn;
    every backend is byte-identical to ``serial`` for float32
    campaigns.
``--seed N``
    Campaign seed override, for independent re-runs of a scenario.
``--precision float64-exact|float32``
    Acquisition-chain precision: ``float32`` runs the counter-based
    high-throughput capture chain; ``float64-exact`` (each scenario's
    default) keeps the bit-exact historical chain.
``--grid key=val[,val...]``
    One design-space axis for grid-aware scenarios (``sweep``); repeat
    the flag for a multi-axis grid, or pass a curated grid name
    (``--grid noise-floor``).  See ``docs/sweeps.md``.
``--retries N``
    Per-chunk retry budget for transient worker faults (0 = fail fast).
    Retried chunks are pure functions of their trace range, so retries
    never change results.  See ``docs/resilience.md``.
``--chunk-timeout SECONDS``
    Soft per-chunk watchdog deadline: a hung or killed worker is
    detected, the pool is rebuilt, and the chunk re-dispatched (counts
    against ``--retries``).
``--checkpoint DIR``
    Persist accumulator state and completed chunk ranges to ``DIR``
    after every folded chunk (atomic write-rename).
``--resume``
    Resume a killed run from ``--checkpoint DIR`` instead of starting
    fresh; the finished run is byte-identical to an uninterrupted one.
``--manifest PATH``
    Batch manifest for the ``corpus`` scenario (which *requires* one;
    see ``docs/corpus.md``).  Under ``all``, the corpus joins the batch
    only when a manifest is supplied.
``--reduce parent|worker``
    Where campaign statistics fold.  ``worker`` is the comms-avoiding
    mode: each worker folds its chunk locally and ships only compact
    sufficient statistics, merged in chunk order — byte-identical to
    the parent fold at a fraction of the IPC bytes (see
    ``docs/backends.md``, "Reduction modes").
``--format json|text``
    ``text`` (default) prints each scenario's rendered report;
    ``json`` emits an array of schema-versioned result envelopes
    (``repro.envelope/1``, see ``docs/api.md``).  A scenario that
    crashes contributes an error envelope instead of silencing the
    reports collected before it; the exit status stays non-zero.

A knob the chosen scenario cannot honor is a hard usage error (exit
status 2) — the scenario's declared capabilities decide, not a
hand-maintained flag table.  Malformed knob *values* (``--jobs 0``,
``--chunk-size 0``, ``--traces 0``, a negative ``--retries``) are
likewise rejected at parse time with the offending flag named, before
any scenario code loads.  Only ``all`` narrows the knob set per
scenario (with a note on stderr), since one flag set fans out over
scenarios with different capabilities.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _int_at_least(flag: str, minimum: int):
    """An argparse ``type`` rejecting out-of-range values flag-by-name.

    Validating inside the parser (rather than letting RunRequest throw
    later) keeps the contract uniform with capability errors: a bad
    value is a usage error — exit status 2, message naming the flag —
    not a stack trace.
    """

    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
        if value < minimum:
            bound = "positive" if minimum == 1 else f"at least {minimum}"
            if minimum == 0:
                bound = "non-negative"
            raise argparse.ArgumentTypeError(f"{flag} must be {bound}, got {value}")
        return value

    parse.__name__ = "int"  # argparse error prefix: "invalid int value"
    return parse


def _positive_float(flag: str):
    def parse(text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
        if not value > 0:
            raise argparse.ArgumentTypeError(f"{flag} must be positive, got {value}")
        return value

    parse.__name__ = "float"
    return parse


def build_parser() -> argparse.ArgumentParser:
    # known_names() is import-light: the numpy/scipy-heavy experiment
    # modules only load once a scenario actually runs (in main()).
    from repro.campaigns.registry import known_names

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of Barenghi & Pelosi (DAC 2018).",
    )
    parser.add_argument(
        "experiment",
        choices=known_names() + ["all"],
        help=(
            "which scenario to run, or 'all' for every registered scenario "
            "('repro serve' starts the HTTP service; see repro serve --help)"
        ),
    )
    parser.add_argument(
        "--traces",
        type=_int_at_least("--traces", 1),
        default=None,
        help="trace count override (statistical experiments)",
    )
    parser.add_argument(
        "--reps",
        type=_int_at_least("--reps", 1),
        default=None,
        help="microbenchmark repetitions (CPI experiments)",
    )
    parser.add_argument(
        "--chunk-size",
        type=_int_at_least("--chunk-size", 1),
        default=None,
        help="stream campaigns in chunks of this many traces (constant memory)",
    )
    parser.add_argument(
        "--jobs",
        type=_int_at_least("--jobs", 1),
        default=None,
        help="worker processes for chunk fan-out (with --chunk-size)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "fork", "spawn"),
        default=None,
        help="execution backend for the worker fan-out (default: auto)",
    )
    parser.add_argument(
        "--seed",
        type=_int_at_least("--seed", 0),
        default=None,
        help="campaign seed override",
    )
    parser.add_argument(
        "--precision",
        choices=("float64-exact", "float32"),
        default=None,
        help="acquisition-chain precision (default: the scenario's own)",
    )
    parser.add_argument(
        "--grid",
        action="append",
        default=None,
        metavar="KEY=VAL[,VAL...]",
        help=(
            "design-space axis for grid-aware scenarios (repeatable), "
            "or a curated grid name"
        ),
    )
    parser.add_argument(
        "--retries",
        type=_int_at_least("--retries", 0),
        default=None,
        metavar="N",
        help="per-chunk retry budget for transient worker faults (0 = fail fast)",
    )
    parser.add_argument(
        "--chunk-timeout",
        type=_positive_float("--chunk-timeout"),
        default=None,
        metavar="SECONDS",
        help="soft per-chunk watchdog deadline (hung workers re-dispatched)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="checkpoint accumulator state + completed chunks to DIR",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume a killed run from --checkpoint DIR (byte-identical finish)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="batch manifest for the corpus scenario (see docs/corpus.md)",
    )
    parser.add_argument(
        "--reduce",
        choices=("parent", "worker"),
        default=None,
        help=(
            "where campaign statistics fold: 'worker' ships only "
            "sufficient statistics between processes (comms-avoiding, "
            "byte-identical); default: 'parent'"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    return parser


def _build_request(parser: argparse.ArgumentParser, args: argparse.Namespace):
    from repro.api import RunRequest

    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint DIR")
    try:
        return RunRequest(
            n_traces=args.traces,
            reps=args.reps,
            chunk_size=args.chunk_size,
            jobs=args.jobs,
            backend=args.backend,
            seed=args.seed,
            precision=args.precision,
            grid=tuple(args.grid) if args.grid else None,
            retries=args.retries,
            chunk_timeout=args.chunk_timeout,
            checkpoint=args.checkpoint,
            resume=True if args.resume else None,
            reduce=args.reduce,
            manifest=args.manifest,
        )
    except ValueError as error:
        parser.error(str(error))


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "serve":
        # The service front-end has its own flag set (host/port/spool/
        # tenants); scenario knobs never leak into it and vice versa.
        from repro.service.cli import main as serve_main

        return serve_main(arguments[1:])
    if (
        len(arguments) >= 2
        and arguments[0] == "corpus"
        and arguments[1] in ("run", "list")
    ):
        # The batch front-end (store/force control, workload listing);
        # `repro corpus --manifest PATH` without a verb still dispatches
        # through the generic scenario path below.
        from repro.corpus.cli import main as corpus_main

        return corpus_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    request = _build_request(parser, args)

    from repro.api import CapabilityError, Envelope, Session
    from repro.api.capabilities import KNOB_FLAGS
    from repro.campaigns import registry

    session = Session()
    run_all = args.experiment == "all"
    chosen = registry.names() if run_all else [args.experiment]
    if run_all and request.manifest is None:
        from repro.api.capabilities import Capability

        for name in [n for n in chosen]:
            if Capability.MANIFEST in registry.get(name).capabilities:
                chosen.remove(name)
                print(
                    f"note: skipping {name} (requires --manifest PATH; "
                    "see docs/corpus.md)",
                    file=sys.stderr,
                )
    if not run_all:
        scenario = registry.get(args.experiment)
        try:
            request.validate(scenario)
        except CapabilityError as error:
            parser.error(error.cli_message())
        from repro.api.capabilities import Capability, ManifestRequiredError

        if Capability.MANIFEST in scenario.capabilities and request.manifest is None:
            # Manifest-required scenarios fail at parse time (a usage
            # error, exit 2), not as a runtime failure envelope.
            parser.error(
                ManifestRequiredError(
                    scenario.name, scenario.capabilities
                ).cli_message()
            )

    records = []
    failures = 0
    for name in chosen:
        scenario = registry.get(name)
        scenario_request = request
        if run_all:
            scenario_request, dropped = request.narrowed_to(scenario)
            for knob in dropped:
                print(
                    f"note: {name} does not support {KNOB_FLAGS[knob]}; ignoring it",
                    file=sys.stderr,
                )
        start = time.time()
        try:
            envelope = session.run(name, scenario_request)
            record = envelope.to_json()
        except Exception as error:  # noqa: BLE001 - isolate per scenario
            # One crashing scenario must not lose every report collected
            # before it (historically --format json buffered everything
            # and the traceback replaced the output entirely).
            failures += 1
            message = f"{type(error).__name__}: {error}"
            envelope = Envelope.failure(
                scenario=name,
                title=scenario.title,
                seconds=time.time() - start,
                error=message,
            )
            record = envelope.to_json()
            print(f"error: scenario {name} failed: {message}", file=sys.stderr)
        if args.format == "json":
            records.append(record)
        else:
            print(f"==== {name} ({envelope.seconds:.1f}s) ====")
            print(envelope.render())
            print()
    if args.format == "json":
        print(json.dumps(records, indent=2))
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
