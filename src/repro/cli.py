"""Command-line interface: regenerate any experiment from a shell.

Usage::

    python -m repro table1
    python -m repro figure2
    python -m repro table2    [--traces 3000]
    python -m repro figure3   [--traces 3000]
    python -m repro figure4   [--traces 100]
    python -m repro ablations [--traces 2000]
    python -m repro baselines [--traces 2000]
    python -m repro success-curves
    python -m repro all
"""

from __future__ import annotations

import argparse
import sys
import time


def _run_table1(args) -> str:
    from repro.experiments.table1 import run_table1

    return run_table1(reps=args.reps).render()


def _run_figure2(args) -> str:
    from repro.experiments.figure2 import run_figure2

    return run_figure2(reps=args.reps).render()


def _run_table2(args) -> str:
    from repro.experiments.table2 import run_table2

    return run_table2(n_traces=args.traces or 3000).render()


def _run_figure3(args) -> str:
    from repro.experiments.figure3 import run_figure3

    return run_figure3(n_traces=args.traces or 3000).render()


def _run_figure4(args) -> str:
    from repro.experiments.figure4 import run_figure4

    return run_figure4(n_traces=args.traces or 100).render()


def _run_ablations(args) -> str:
    from repro.experiments.ablations import run_all_ablations

    results = run_all_ablations(n_traces=args.traces or 2000)
    return "\n\n".join(result.render() for result in results)


def _run_baselines(args) -> str:
    from repro.experiments.baseline_models import run_baseline_comparison

    return run_baseline_comparison(n_traces=args.traces or 2000).render()


def _run_success_curves(args) -> str:
    from repro.experiments.success_curves import run_success_curves

    return run_success_curves().render()


_COMMANDS = {
    "table1": _run_table1,
    "figure2": _run_figure2,
    "table2": _run_table2,
    "figure3": _run_figure3,
    "figure4": _run_figure4,
    "ablations": _run_ablations,
    "baselines": _run_baselines,
    "success-curves": _run_success_curves,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of Barenghi & Pelosi (DAC 2018).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--traces", type=int, default=None, help="trace count override (statistical experiments)"
    )
    parser.add_argument(
        "--reps", type=int, default=200, help="microbenchmark repetitions (CPI experiments)"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(_COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        output = _COMMANDS[name](args)
        print(f"==== {name} ({time.time() - start:.1f}s) ====")
        print(output)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
