"""The persistent on-disk job queue of the leakage-evaluation service.

One spool directory holds the whole service state, so a restart (or a
``kill -9``) recovers everything from disk:

* ``jobs/<id>.json`` — the versioned ``repro.job/1`` record of every
  job ever submitted, written atomically (mkstemp + ``os.replace``, the
  :class:`~repro.campaigns.checkpoint.CheckpointStore` discipline) so a
  kill mid-write never tears a record.
* ``queued/<id>`` / ``running/<id>`` — claim markers.  A marker file's
  *location* is the queue state; a worker claims a job by atomically
  renaming its marker from ``queued/`` to ``running/`` — exactly one
  claimer wins the rename, the loser sees ``FileNotFoundError`` and
  moves on.  Marker contents carry the owning tenant, so per-tenant
  in-flight counts scan only the (depth-bounded) marker directories,
  never the unbounded job history.
* ``results/<id>.json`` — the schema-valid result envelope of a
  finished job.
* ``cache/<key>.json`` / ``keys/<key>`` — the content-addressed result
  cache and the key→job index used for in-flight request coalescing
  (see :mod:`repro.service.cache`).

State machine: ``queued → running → done | failed``.  Completion
commits in result-then-marker order (result envelope and job record
first, marker removal last), so :meth:`recover` after a crash can
always tell a finished job with a stale marker from an interrupted one:
the former's record already says ``done`` and only the marker is
cleaned up; the latter is re-queued and re-executed (scenario runs are
pure functions of the resolved request, so a replay is byte-identical).
"""

from __future__ import annotations

import json
import os
import tempfile
import time

#: Bump on any incompatible job-record change; readers reject other
#: versions loudly instead of misreading them.
JOB_SCHEMA = "repro.job/1"

#: The job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")

_MARKER_DIRS = ("queued", "running")
_DIRS = ("jobs", "queued", "running", "results", "cache", "keys")


class JobError(RuntimeError):
    """A job record could not be loaded, validated, or transitioned."""


def atomic_write_text(directory: str, path: str, payload: str) -> None:
    """CheckpointStore-style mkstemp + rename: never a torn file."""
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def new_job_id() -> str:
    """A sortable, collision-proof job id (FIFO order by name)."""
    return f"{time.time_ns():020d}-{os.urandom(4).hex()}"


class JobQueue:
    """The spool directory: persistent jobs, claims, results, cache."""

    def __init__(self, root: str):
        self.root = str(root)
        for name in _DIRS:
            os.makedirs(os.path.join(self.root, name), exist_ok=True)

    # -- paths -----------------------------------------------------------

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.root, "jobs", f"{job_id}.json")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.root, "results", f"{job_id}.json")

    def _marker(self, state: str, job_id: str) -> str:
        return os.path.join(self.root, state, job_id)

    # -- records ---------------------------------------------------------

    def save_job(self, record: dict) -> None:
        if record.get("schema") != JOB_SCHEMA:
            raise JobError(f"job record must carry schema {JOB_SCHEMA!r}")
        directory = os.path.join(self.root, "jobs")
        atomic_write_text(directory, self._job_path(record["id"]), json.dumps(record))

    def load_job(self, job_id: str) -> dict | None:
        try:
            with open(self._job_path(job_id)) as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as error:
            raise JobError(f"job record {job_id} is unreadable: {error}") from error
        if record.get("schema") != JOB_SCHEMA:
            raise JobError(
                f"job record {job_id} has schema {record.get('schema')!r}; "
                f"this runtime reads {JOB_SCHEMA!r}"
            )
        return record

    # -- submission ------------------------------------------------------

    def build_job(
        self,
        *,
        scenario: str,
        tenant: str,
        request_record: dict,
        key: str,
        state: str = "queued",
        cached: bool = False,
    ) -> dict:
        return {
            "schema": JOB_SCHEMA,
            "id": new_job_id(),
            "scenario": scenario,
            "tenant": tenant,
            "request": request_record,
            "key": key,
            "state": state,
            "created": time.time(),
            "started": None,
            "finished": None,
            "attempts": 0,
            "cached": cached,
            "error": None,
        }

    def enqueue(self, record: dict) -> dict:
        """Persist ``record`` and make it claimable."""
        record["state"] = "queued"
        self.save_job(record)
        marker = self._marker("queued", record["id"])
        atomic_write_text(os.path.join(self.root, "queued"), marker, record["tenant"])
        return record

    # -- claim / complete ------------------------------------------------

    def claim(self) -> dict | None:
        """Atomically claim the oldest queued job, or ``None``.

        The ``queued → running`` marker rename is the mutual exclusion:
        a concurrent claimer loses the rename with FileNotFoundError
        and tries the next marker.
        """
        try:
            pending = sorted(os.listdir(os.path.join(self.root, "queued")))
        except FileNotFoundError:
            return None
        for job_id in pending:
            if job_id.endswith(".tmp"):
                continue
            try:
                os.rename(self._marker("queued", job_id), self._marker("running", job_id))
            except FileNotFoundError:
                continue  # another worker won this one
            record = self.load_job(job_id)
            if record is None:
                # Marker without a record: a crash between marker and
                # record writes (enqueue writes record first, so this
                # is a foreign artifact); drop the marker.
                os.unlink(self._marker("running", job_id))
                continue
            record["state"] = "running"
            record["started"] = time.time()
            record["attempts"] = int(record.get("attempts", 0)) + 1
            self.save_job(record)
            return record
        return None

    def finish(self, record: dict, envelope_record: dict) -> dict:
        """Commit a completed job: result first, marker removal last."""
        atomic_write_text(
            os.path.join(self.root, "results"),
            self.result_path(record["id"]),
            json.dumps(envelope_record),
        )
        record["state"] = "done"
        record["finished"] = time.time()
        self.save_job(record)
        self._drop_marker(record["id"])
        return record

    def fail(self, record: dict, error: str, envelope_record: dict | None = None) -> dict:
        if envelope_record is not None:
            atomic_write_text(
                os.path.join(self.root, "results"),
                self.result_path(record["id"]),
                json.dumps(envelope_record),
            )
        record["state"] = "failed"
        record["finished"] = time.time()
        record["error"] = str(error)
        self.save_job(record)
        self._drop_marker(record["id"])
        return record

    def _drop_marker(self, job_id: str) -> None:
        for state in _MARKER_DIRS:
            try:
                os.unlink(self._marker(state, job_id))
            except FileNotFoundError:
                pass

    # -- results ---------------------------------------------------------

    def load_result(self, job_id: str) -> dict | None:
        try:
            with open(self.result_path(job_id)) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None

    # -- introspection ---------------------------------------------------

    def markers(self, state: str) -> dict[str, str]:
        """``{job_id: tenant}`` for one marker directory."""
        directory = os.path.join(self.root, state)
        out: dict[str, str] = {}
        try:
            names = os.listdir(directory)
        except FileNotFoundError:
            return out
        for name in names:
            if name.endswith(".tmp"):
                continue
            try:
                with open(os.path.join(directory, name)) as handle:
                    out[name] = handle.read().strip()
            except OSError:
                continue  # claimed/completed mid-scan
        return out

    def depth(self) -> int:
        """Jobs waiting for a worker."""
        return len(self.markers("queued"))

    def in_flight(self, tenant: str | None = None) -> int:
        """Queued + running jobs, optionally for one tenant."""
        count = 0
        for state in _MARKER_DIRS:
            for owner in self.markers(state).values():
                if tenant is None or owner == tenant:
                    count += 1
        return count

    # -- crash recovery --------------------------------------------------

    def recover(self) -> list[str]:
        """Re-queue jobs a dead worker left claimed; returns their ids.

        A marker in ``running/`` whose record already says ``done`` or
        ``failed`` is a completion interrupted between commit and
        cleanup — only the stale marker is removed.  Everything else in
        ``running/`` was genuinely in flight when the process died and
        goes back to ``queued`` (determinism makes the re-run
        byte-identical).
        """
        requeued: list[str] = []
        for job_id, tenant in sorted(self.markers("running").items()):
            record = self.load_job(job_id)
            if record is None or record.get("state") in ("done", "failed"):
                self._drop_marker(job_id)
                continue
            try:
                os.rename(self._marker("running", job_id), self._marker("queued", job_id))
            except FileNotFoundError:
                continue
            record["state"] = "queued"
            record["started"] = None
            self.save_job(record)
            requeued.append(job_id)
        return requeued
