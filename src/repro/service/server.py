"""The HTTP/JSON edge of the leakage-evaluation service.

A hand-rolled HTTP/1.1 server on :mod:`asyncio` streams — stdlib only,
by constraint and by design (the request path is four small routes over
JSON bodies; a framework would be the heaviest dependency in the
repository).  Keep-alive is supported (``Content-Length``-framed
responses), pipelining is not.

Routes::

    GET  /v1/healthz            liveness + queue gauges
    POST /v1/runs               submit a repro.request/1 (+ scenario)
    GET  /v1/runs/{id}          the repro.job/1 record
    GET  /v1/runs/{id}/result   the repro.envelope/1 record

Submission bodies look like::

    {"scenario": "figure3", "request": {"schema": "repro.request/1", ...}}

Status mapping (the runtime raises, the edge translates):

* schema violations / service-policy knobs → **400** with a structured
  ``{"error": {"type", "message", ...}}`` body;
* capability violations → **400** with the scenario's declared
  capability set and the same wording the CLI prints
  (``CapabilityError.cli_message()``);
* unknown scenario / unknown job → **404**;
* missing or unknown tenant token → **401**;
* per-tenant quota or queue-depth backpressure → **429** with a
  ``Retry-After`` header;
* a result fetched before the job finished → **202** with the job
  record (poll again);
* a failed job's result → **500** carrying the error envelope.

Every ``POST /v1/runs`` response carries ``X-Repro-Cache`` — ``miss``
(newly queued), ``hit`` (served from the dedup cache without
execution) or ``coalesced`` (attached to an identical in-flight job).
Tenants identify themselves with ``Authorization: Bearer <token>`` (or
``X-Repro-Token``); with no tenants configured the service is open.
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Any

from repro.service.queue import atomic_write_text
from repro.service.runtime import Busy, ServiceRejection, ServiceRuntime

#: Largest accepted request body; leakage requests are a few KiB.
MAX_BODY_BYTES = 1 << 20

#: Seconds an idle keep-alive connection may sit before we close it.
IDLE_TIMEOUT = 30.0

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _BadRequest(Exception):
    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message


def _encode_response(
    status: int, body: dict | list, extra_headers: dict[str, str] | None = None
) -> bytes:
    payload = json.dumps(body).encode()
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return "\r\n".join(headers).encode() + b"\r\n\r\n" + payload


class ServiceServer:
    """Bind, accept, route; all state lives in the runtime's spool."""

    def __init__(self, runtime: ServiceRuntime, host: str = "127.0.0.1", port: int = 0):
        self.runtime = runtime
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> int:
        """Bind and start accepting; returns the bound port.

        The bound port is also written to ``<spool>/port`` so tooling
        (the smoke harness, the load generator) can discover an
        ephemeral ``--port 0`` binding.
        """
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        atomic_write_text(
            self.runtime.spool,
            os.path.join(self.runtime.spool, "port"),
            str(self.port),
        )
        return self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), timeout=IDLE_TIMEOUT
                    )
                except asyncio.TimeoutError:
                    break
                except _BadRequest as error:
                    writer.write(
                        _encode_response(
                            error.status,
                            {"error": {"type": "bad-request", "message": error.message}},
                            {"Connection": "close"},
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, extra = self._dispatch(method, path, headers, body)
                keep_alive = headers.get("connection", "keep-alive") != "close"
                if not keep_alive:
                    extra = dict(extra or {}, Connection="close")
                writer.write(_encode_response(status, payload, extra))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels in-flight connection tasks; asyncio's
            # stream-protocol callback would log the cancellation as an
            # "Exception in callback" if it escaped, so absorb it here and
            # just close the socket.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        except asyncio.LimitOverrunError:
            raise _BadRequest(413, "header block too large") from None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _BadRequest(400, f"malformed request line {lines[0]!r}") from None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(413, f"request body over {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    # -- routing ---------------------------------------------------------

    def _dispatch(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict | list, dict[str, str] | None]:
        try:
            if path == "/v1/healthz":
                if method != "GET":
                    return self._method_not_allowed("GET")
                return 200, self.runtime.healthz(), None
            if path == "/v1/runs":
                if method != "POST":
                    return self._method_not_allowed("POST")
                return self._submit(headers, body)
            if path.startswith("/v1/runs/"):
                if method != "GET":
                    return self._method_not_allowed("GET")
                tail = path[len("/v1/runs/") :]
                if tail.endswith("/result"):
                    return self._result(tail[: -len("/result")].rstrip("/"))
                return self._status(tail)
            return 404, {"error": {"type": "unknown-route", "message": f"no route {path}"}}, None
        except _BadRequest as error:
            return error.status, {"error": {"type": "bad-request", "message": error.message}}, None
        except Exception as error:  # noqa: BLE001 - edge must answer, not die
            return (
                500,
                {"error": {"type": "internal", "message": f"{type(error).__name__}: {error}"}},
                None,
            )

    @staticmethod
    def _method_not_allowed(allowed: str) -> tuple[int, dict, dict[str, str]]:
        return (
            405,
            {"error": {"type": "method-not-allowed", "message": f"use {allowed}"}},
            {"Allow": allowed},
        )

    def _token(self, headers: dict[str, str]) -> str | None:
        auth = headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip()
        return headers.get("x-repro-token")

    # -- handlers --------------------------------------------------------

    def _submit(
        self, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict, dict[str, str] | None]:
        from repro.api import CapabilityError, RequestSchemaError

        try:
            tenant = self.runtime.authenticate(self._token(headers))
        except ServiceRejection as error:
            return error.status, {"error": {"type": error.kind, "message": str(error)}}, None
        try:
            payload = json.loads(body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": {"type": "bad-json", "message": str(error)}}, None
        if not isinstance(payload, dict) or "scenario" not in payload:
            return (
                400,
                {
                    "error": {
                        "type": "bad-request",
                        "message": 'body must be {"scenario": ..., "request": {...}}',
                    }
                },
                None,
            )
        try:
            submission = self.runtime.submit(
                tenant, payload["scenario"], payload.get("request") or {"schema": "repro.request/1"}
            )
        except CapabilityError as error:
            return (
                400,
                {
                    "error": {
                        "type": "capability",
                        "message": error.cli_message(),
                        "scenario": error.scenario,
                        "knobs": list(error.knobs),
                        "supported": sorted(str(c) for c in error.supported),
                    }
                },
                None,
            )
        except RequestSchemaError as error:
            return (
                400,
                {
                    "error": {
                        "type": "request-schema",
                        "message": str(error),
                        "problems": list(error.problems),
                    }
                },
                None,
            )
        except Busy as error:
            return (
                429,
                {"error": {"type": error.kind, "message": str(error)}},
                {"Retry-After": f"{error.retry_after:g}"},
            )
        except ServiceRejection as error:
            return error.status, {"error": {"type": error.kind, "message": str(error)}}, None
        record = submission.record
        status = 201 if submission.disposition == "miss" else 200
        body_out = {
            "id": record["id"],
            "state": record["state"],
            "scenario": record["scenario"],
            "key": record["key"],
            "cached": submission.disposition == "hit",
            "coalesced": submission.disposition == "coalesced",
        }
        return status, body_out, {"X-Repro-Cache": submission.disposition}

    def _status(self, job_id: str) -> tuple[int, dict, None]:
        record = self.runtime.status(job_id)
        if record is None:
            return 404, {"error": {"type": "unknown-job", "message": f"no job {job_id!r}"}}, None
        return 200, record, None

    def _result(self, job_id: str) -> tuple[int, dict, None]:
        record, envelope = self.runtime.result(job_id)
        if record is None:
            return 404, {"error": {"type": "unknown-job", "message": f"no job {job_id!r}"}}, None
        if envelope is None:
            return 202, record, None
        if record.get("state") == "failed":
            return 500, envelope, None
        return 200, envelope, None


def serve(
    runtime: ServiceRuntime,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Any = None,
) -> None:
    """Blocking entry: recover, start workers, serve HTTP until SIGTERM.

    ``ready`` (optional callable) receives the bound port once the
    socket is listening — the CLI prints the listening line there.
    """
    import signal

    async def _main() -> None:
        server = ServiceServer(runtime, host, port)
        bound = await server.start()
        if ready is not None:
            ready(bound)
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stopping.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        serve_task = asyncio.ensure_future(server.serve_forever())
        stop_task = asyncio.ensure_future(stopping.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            serve_task.cancel()
            stop_task.cancel()
            await server.close()

    runtime.start()
    try:
        asyncio.run(_main())
    finally:
        runtime.stop()
