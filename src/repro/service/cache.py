"""Content-addressed result cache and the deterministic job key.

The service deduplicates work by content address: two requests that are
guaranteed to produce the same envelope share one :func:`job_key` and
therefore one execution.  The key digests, in canonical JSON:

* the *program*: the scenario's name and title (a registered scenario's
  program is a pure function of its declaration plus the config);
* the pipeline-config identity — the wire overrides of
  :meth:`PipelineConfig.identity`-relevant fields, display name
  excluded, so renamed variants share a key exactly as they share a
  compiled schedule;
* the scope identity (the acquisition chain's counterpart);
* the *result-affecting* resolved knobs: ``n_traces``, ``reps``,
  ``seed``, ``precision`` and ``grid``.

Performance-only knobs are deliberately excluded: ``jobs``, ``backend``,
``reduce``, ``retries`` and ``chunk_timeout`` never change results (the
backend/reduction equivalence guarantees of docs/backends.md), and
``chunk_size`` is layout-invariant on the float32 chain whose noise is
counter-addressed by absolute trace position.  The float64-exact chain
draws noise serially per capture, so there chunking *does* change the
realization and ``chunk_size`` stays in the key.

Keys are pure functions of JSON scalars and :mod:`hashlib`, so they are
stable across process restarts and start methods (spawn vs fork) — the
property tests in ``tests/service/test_cache.py`` pin this.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any

from repro.service.queue import atomic_write_text

#: Versioned key-material schema: bump to invalidate every cached entry.
KEY_SCHEMA = "repro.jobkey/1"

#: Resolved request knobs that can change the result envelope.
RESULT_KNOBS = ("n_traces", "reps", "seed", "precision", "grid")


def _effective_precision(scenario: Any, request: Any) -> str:
    if request.precision is not None:
        return request.precision
    scope = request.scope
    if scope is not None and getattr(scope, "precision", None) is not None:
        return scope.precision
    return "float64-exact"


def key_material(scenario: Any, resolved: Any) -> dict:
    """The canonical JSON the job key digests (resolved request only)."""
    from repro.api.wire import config_to_json, scope_to_json

    record = resolved.to_json()
    material: dict[str, Any] = {
        "schema": KEY_SCHEMA,
        "program": hashlib.sha256(
            f"{scenario.name}\x00{scenario.title}".encode()
        ).hexdigest(),
        "scenario": scenario.name,
        "config": config_to_json(resolved.config)["overrides"]
        if resolved.config is not None
        else None,
        "scope": scope_to_json(resolved.scope)["overrides"]
        if resolved.scope is not None
        else None,
    }
    for knob in RESULT_KNOBS:
        material[knob] = record.get(knob)
    if _effective_precision(scenario, resolved) != "float32":
        # Serial per-capture noise: the chunk layout is part of the
        # realization (float32's counter-based noise is layout-proof).
        material["chunk_size"] = record.get("chunk_size")
    return material


def job_key(scenario: Any, resolved: Any) -> str:
    """The content address of one resolved request's result."""
    canonical = json.dumps(
        key_material(scenario, resolved), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Envelope records addressed by :func:`job_key`, on disk."""

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> dict | None:
        try:
            with open(self._path(key)) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            return None  # torn by an interrupted legacy writer; treat as miss

    def put(self, key: str, envelope_record: dict) -> None:
        atomic_write_text(self.directory, self._path(key), json.dumps(envelope_record))

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))
