"""The service runtime: submit/status/result semantics + worker pool.

This layer is transport-agnostic — the HTTP edge
(:mod:`repro.service.server`) translates its outcomes into status codes
and headers, and the tests drive it directly.  It owns:

* **admission** — scenario lookup, strict ``repro.request/1``
  deserialization with capability validation, service-side knob policy
  (tenants may not point ``checkpoint``/``resume`` at server paths; the
  service owns persistence), and resolution to the canonical request
  the job key digests;
* **dedup** — a completed key is served straight from the result cache
  (a ``hit``), an in-flight key coalesces onto the already-queued job
  (``coalesced``: the caller gets the primary job id and polls it; the
  queue never holds two copies of the same work);
* **backpressure** — per-tenant in-flight quotas and a global queue
  depth bound, both surfaced as :class:`Busy` with a retry hint;
* **the worker pool** — OS processes running
  :func:`repro.service.worker.run_worker`, restarted into a recovered
  queue on service start (``recover()`` re-queues claims a dead worker
  left behind, so a ``kill -9`` loses no jobs).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Any

from repro.service.cache import ResultCache, job_key
from repro.service.queue import JobQueue, atomic_write_text

#: Wire knobs the service refuses regardless of scenario capabilities:
#: they name server-side filesystem state a tenant has no business in.
SERVICE_REJECTED_KNOBS = ("checkpoint", "resume")


class ServiceRejection(ValueError):
    """An admission failure the edge maps to a structured 4xx body."""

    def __init__(self, kind: str, message: str, status: int = 400):
        self.kind = kind
        self.status = status
        super().__init__(message)


class UnknownScenario(ServiceRejection):
    def __init__(self, name: str, known: list[str]):
        super().__init__(
            "unknown-scenario",
            f"unknown scenario {name!r}; registered: {', '.join(known)}",
            status=404,
        )


class Busy(ServiceRejection):
    """Quota or queue-depth backpressure: retry later (429)."""

    def __init__(self, kind: str, message: str, retry_after: float):
        super().__init__(kind, message, status=429)
        self.retry_after = retry_after


@dataclass(frozen=True)
class Tenant:
    name: str
    token: str | None = None
    #: max queued+running jobs this tenant may hold at once
    quota: int = 16


@dataclass
class ServicePolicy:
    """Everything ``repro serve`` configures beyond host/port."""

    workers: int = 2
    queue_depth: int = 256
    default_quota: int = 16
    #: execution defaults handed to every worker Session (applied only
    #: where a scenario supports them)
    backend: str | None = None
    retries: int | None = None
    chunk_timeout: float | None = None
    reduce: str | None = None
    tenants: tuple[Tenant, ...] = ()
    #: seconds clients are told to back off on 429
    retry_after: float = 1.0

    def session_defaults(self) -> dict:
        defaults = {
            "backend": self.backend,
            "retries": self.retries,
            "chunk_timeout": self.chunk_timeout,
            "reduce": self.reduce,
        }
        return {k: v for k, v in defaults.items() if v is not None}


@dataclass
class Submission:
    """The outcome of one admitted request."""

    record: dict
    #: ``"miss"`` (newly queued), ``"hit"`` (served from the result
    #: cache) or ``"coalesced"`` (attached to an in-flight twin)
    disposition: str


class ServiceRuntime:
    """One spool directory + one worker pool + admission semantics."""

    def __init__(self, spool: str, policy: ServicePolicy | None = None):
        self.spool = str(spool)
        self.policy = policy or ServicePolicy()
        self.queue = JobQueue(self.spool)
        self.cache = ResultCache(os.path.join(self.spool, "cache"))
        self._tenants_by_token = {
            t.token: t for t in self.policy.tenants if t.token is not None
        }
        self._workers: list[multiprocessing.process.BaseProcess] = []

    # -- tenancy ---------------------------------------------------------

    @property
    def requires_auth(self) -> bool:
        return bool(self._tenants_by_token)

    def authenticate(self, token: str | None) -> Tenant:
        """Resolve a bearer token to a tenant.

        With no tenants configured the service is open and every caller
        shares the anonymous tenant (still quota-bounded).  With
        tenants configured, a missing or unknown token is rejected.
        """
        if not self.requires_auth:
            return Tenant("anonymous", quota=self.policy.default_quota)
        tenant = self._tenants_by_token.get(token)
        if tenant is None:
            raise ServiceRejection(
                "unauthorized",
                "missing or unknown tenant token"
                if token is None
                else "unknown tenant token",
                status=401,
            )
        return tenant

    # -- worker pool -----------------------------------------------------

    def start(self) -> list[str]:
        """Recover the queue and launch the worker pool.

        Returns the job ids re-queued from a previous life (crash
        recovery); callers may log them.
        """
        self._clear_stop()
        requeued = self.queue.recover()
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        from repro.service.worker import run_worker

        for index in range(self.policy.workers):
            process = context.Process(
                target=run_worker,
                args=(self.spool, self.session_policy()),
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            process.start()
            self._workers.append(process)
        return requeued

    def session_policy(self) -> dict:
        return self.policy.session_defaults()

    def stop(self, timeout: float = 5.0) -> None:
        """Flag workers down, join them, and terminate stragglers."""
        atomic_write_text(self.spool, os.path.join(self.spool, "stop"), "stop")
        for process in self._workers:
            process.join(timeout=timeout)
        for process in self._workers:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._workers = []

    def _clear_stop(self) -> None:
        try:
            os.unlink(os.path.join(self.spool, "stop"))
        except FileNotFoundError:
            pass

    def workers_alive(self) -> int:
        return sum(1 for process in self._workers if process.is_alive())

    # -- admission -------------------------------------------------------

    def admit(self, scenario_name: str, request_record: Any) -> tuple[Any, Any, str]:
        """Validate + resolve one wire request; returns (scenario, resolved, key).

        Raises :class:`ServiceRejection` /
        :class:`~repro.api.wire.RequestSchemaError` /
        :class:`~repro.api.capabilities.CapabilityError` on refusal —
        the edge maps each to its status code.
        """
        from repro.api import RunRequest
        from repro.campaigns import registry

        try:
            scenario = registry.get(str(scenario_name))
        except KeyError:
            raise UnknownScenario(str(scenario_name), registry.names()) from None
        if isinstance(request_record, dict):
            offending = [
                knob for knob in SERVICE_REJECTED_KNOBS if request_record.get(knob)
            ]
            if offending:
                raise ServiceRejection(
                    "service-policy",
                    f"{', '.join(offending)}: not accepted over the wire "
                    "(the service owns job persistence and resume)",
                )
        request = RunRequest.from_json(request_record, scenario)
        resolved = request.resolve(scenario)
        return scenario, resolved, job_key(scenario, resolved)

    def submit(self, tenant: Tenant, scenario_name: str, request_record: Any) -> Submission:
        """Admit, dedup, quota-check and enqueue one request."""
        scenario, resolved, key = self.admit(scenario_name, request_record)
        wire_record = resolved.to_json()

        cached = self.cache.get(key)
        if cached is not None:
            record = self.queue.build_job(
                scenario=scenario.name,
                tenant=tenant.name,
                request_record=wire_record,
                key=key,
                state="done",
                cached=True,
            )
            self.queue.save_job(record)
            record = self.queue.finish(record, cached)
            return Submission(record, "hit")

        primary_id = self._key_owner(key)
        if primary_id is not None:
            primary = self.queue.load_job(primary_id)
            if primary is not None and primary.get("state") in ("queued", "running"):
                return Submission(primary, "coalesced")

        quota = tenant.quota
        in_flight = self.queue.in_flight(tenant.name)
        if in_flight >= quota:
            raise Busy(
                "quota",
                f"tenant {tenant.name!r} has {in_flight} jobs in flight "
                f"(quota {quota}); retry later",
                retry_after=self.policy.retry_after,
            )
        depth = self.queue.depth()
        if depth >= self.policy.queue_depth:
            raise Busy(
                "backpressure",
                f"queue depth {depth} at the configured bound "
                f"({self.policy.queue_depth}); retry later",
                retry_after=self.policy.retry_after,
            )

        record = self.queue.build_job(
            scenario=scenario.name,
            tenant=tenant.name,
            request_record=wire_record,
            key=key,
        )
        self.queue.enqueue(record)
        self._claim_key(key, record["id"])
        return Submission(record, "miss")

    # -- the key → primary-job index ------------------------------------

    def _key_path(self, key: str) -> str:
        return os.path.join(self.spool, "keys", key)

    def _key_owner(self, key: str) -> str | None:
        try:
            with open(self._key_path(key)) as handle:
                return handle.read().strip() or None
        except FileNotFoundError:
            return None

    def _claim_key(self, key: str, job_id: str) -> None:
        atomic_write_text(
            os.path.join(self.spool, "keys"), self._key_path(key), job_id
        )

    # -- reads -----------------------------------------------------------

    def status(self, job_id: str) -> dict | None:
        return self.queue.load_job(job_id)

    def result(self, job_id: str) -> tuple[dict | None, dict | None]:
        """(job record, envelope record) — envelope ``None`` until done."""
        record = self.queue.load_job(job_id)
        if record is None:
            return None, None
        if record.get("state") not in ("done", "failed"):
            return record, None
        return record, self.queue.load_result(job_id)

    def healthz(self) -> dict:
        return {
            "status": "ok",
            "queued": self.queue.depth(),
            "running": len(self.queue.markers("running")),
            "workers": self.workers_alive(),
            "queue_depth_bound": self.policy.queue_depth,
        }


def parse_tenant_spec(spec: str, default_quota: int) -> Tenant:
    """Parse one ``NAME=TOKEN[:QUOTA]`` CLI tenant declaration."""
    name, _, rest = spec.partition("=")
    if not name or not rest:
        raise ValueError(f"tenant spec must be NAME=TOKEN[:QUOTA], got {spec!r}")
    token, _, quota_text = rest.partition(":")
    quota = default_quota
    if quota_text:
        quota = int(quota_text)
        if quota < 1:
            raise ValueError(f"tenant quota must be positive, got {quota}")
    return Tenant(name=name, token=token, quota=quota)
