"""A stdlib client for the leakage-evaluation service.

Wraps :mod:`http.client` with keep-alive connection reuse, bearer-token
auth and a poll-until-done helper.  The load generator, the smoke
harness and the integration tests all drive the service through this —
it is also the reference for third-party clients (four routes, JSON
both ways; see ``docs/service.md``).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any


class ServiceError(RuntimeError):
    """A non-2xx service response."""

    def __init__(self, status: int, body: Any, headers: dict[str, str] | None = None):
        self.status = status
        self.body = body
        self.headers = dict(headers or {})
        message = body.get("error", {}).get("message") if isinstance(body, dict) else None
        super().__init__(f"HTTP {status}: {message or body}")

    @property
    def retry_after(self) -> float | None:
        value = self.headers.get("retry-after")
        return float(value) if value else None


class ServiceClient:
    """One keep-alive connection to a ``repro serve`` instance."""

    def __init__(self, host: str, port: int, token: str | None = None, timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.token = token
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    # -- plumbing --------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self, method: str, path: str, payload: Any = None
    ) -> tuple[int, Any, dict[str, str]]:
        """One round trip; reconnects once on a dropped keep-alive."""
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        decoded = json.loads(raw.decode()) if raw else None
        return response.status, decoded, {k.lower(): v for k, v in response.getheaders()}

    def _checked(self, method: str, path: str, payload: Any = None, ok=(200, 201, 202)):
        status, decoded, headers = self.request(method, path, payload)
        if status not in ok:
            raise ServiceError(status, decoded, headers)
        return status, decoded, headers

    # -- the API ---------------------------------------------------------

    def healthz(self) -> dict:
        return self._checked("GET", "/v1/healthz")[1]

    def submit(self, scenario: str, request: Any = None) -> dict:
        """POST one run; returns the body plus ``"cache"`` disposition.

        ``request`` may be a :class:`~repro.api.request.RunRequest`, an
        already-encoded ``repro.request/1`` dict, or ``None`` (scenario
        defaults).
        """
        record = request.to_json() if hasattr(request, "to_json") else request
        payload = {"scenario": scenario, "request": record}
        _status, body, headers = self._checked("POST", "/v1/runs", payload)
        body["cache"] = headers.get("x-repro-cache", "miss")
        return body

    def status(self, job_id: str) -> dict:
        return self._checked("GET", f"/v1/runs/{job_id}")[1]

    def result(
        self, job_id: str, wait: bool = False, timeout: float = 300.0, poll: float = 0.05
    ) -> dict:
        """The job's envelope record; optionally poll until it exists.

        A failed job's error envelope is returned (not raised): it is a
        schema-valid ``repro.envelope/1`` record with an ``error`` field,
        exactly what ``repro --format json`` prints for a crash.
        """
        deadline = time.monotonic() + timeout
        while True:
            status, body, headers = self.request("GET", f"/v1/runs/{job_id}/result")
            if status in (200, 500):
                return body
            if status != 202:
                raise ServiceError(status, body, headers)
            if not wait or time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {body.get('state', 'pending')!r}"
                    if wait
                    else f"job {job_id} not finished (state {body.get('state')!r})"
                )
            time.sleep(poll)

    def run(self, scenario: str, request: Any = None, timeout: float = 300.0) -> dict:
        """Submit and wait: the remote analogue of ``Session.run``."""
        submitted = self.submit(scenario, request)
        return self.result(submitted["id"], wait=True, timeout=timeout)
