"""``repro.service`` — the networked leakage-evaluation service.

The batch-service layer over :mod:`repro.api`: wire-format
``repro.request/1`` submissions land on a persistent on-disk job queue
(``repro.job/1`` records, crash-safe), a pool of worker processes
executes them through long-lived :class:`~repro.api.session.Session`\\ s,
results are deduplicated through a content-addressed envelope cache,
and a stdlib asyncio HTTP edge (``repro serve``) fronts the whole thing
with per-tenant quotas and queue-depth backpressure.

Layering (each importable on its own):

* :mod:`repro.service.queue`   — spool directory, ``repro.job/1``, claims
* :mod:`repro.service.cache`   — :func:`job_key` + content-addressed results
* :mod:`repro.service.worker`  — the claim→execute→commit loop
* :mod:`repro.service.runtime` — admission, dedup, quotas, worker pool
* :mod:`repro.service.server`  — the HTTP/1.1 edge
* :mod:`repro.service.client`  — stdlib client (submit/status/result)

See ``docs/service.md`` for the HTTP API and deployment notes.
"""

from repro.service.cache import ResultCache, job_key
from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import JOB_SCHEMA, JOB_STATES, JobQueue
from repro.service.runtime import (
    Busy,
    ServicePolicy,
    ServiceRejection,
    ServiceRuntime,
    Tenant,
)
from repro.service.server import ServiceServer

__all__ = [
    "Busy",
    "JOB_SCHEMA",
    "JOB_STATES",
    "JobQueue",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "ServicePolicy",
    "ServiceRejection",
    "ServiceRuntime",
    "ServiceServer",
    "Tenant",
    "job_key",
]
