"""A closed-loop load generator for the leakage-evaluation service.

Drives a running ``repro serve`` instance with a **zipf-ish request
mix**: a small population of distinct request variants with weights
``1/rank``, so a few variants dominate (the realistic dedup regime — a
service mostly re-answers the questions it was just asked) while the
tail keeps introducing fresh work.  Each worker thread runs its own
keep-alive :class:`~repro.service.client.ServiceClient` in a submit →
poll-result loop, honoring 429 ``Retry-After`` backoff, and records the
end-to-end latency and cache disposition of every completed run.

The report feeds ``scripts/bench.py --section service`` and the tracked
``BENCH_service.json``: sustained runs/min, p50/p95 latency split by
disposition, dedup rate, cache-hit speedup, and the peak queue depth a
sampler thread observed (bounded-queue evidence).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.service.client import ServiceClient, ServiceError


@dataclass
class LoadSample:
    """One completed request, as observed by a generator thread."""

    variant: int
    disposition: str  # miss | hit | coalesced
    latency_s: float
    state: str  # done | failed


@dataclass
class LoadReport:
    """Aggregated outcome of one load run."""

    completed: int
    failed: int
    rejected_429: int
    elapsed_s: float
    runs_per_min: float
    dedup_rate: float
    dispositions: dict = field(default_factory=dict)
    latency: dict = field(default_factory=dict)
    cache_hit_speedup: float | None = None
    max_queue_depth: int = 0
    max_queue_bound: int | None = None

    def to_json(self) -> dict:
        return {
            "completed": self.completed,
            "failed": self.failed,
            "rejected_429": self.rejected_429,
            "elapsed_s": round(self.elapsed_s, 3),
            "runs_per_min": round(self.runs_per_min, 1),
            "dedup_rate": round(self.dedup_rate, 4),
            "dispositions": dict(self.dispositions),
            "latency": self.latency,
            "cache_hit_speedup": self.cache_hit_speedup,
            "max_queue_depth": self.max_queue_depth,
            "max_queue_bound": self.max_queue_bound,
        }


def zipf_variants(n_variants: int, *, scenario: str = "figure3", n_traces: int = 32) -> list[dict]:
    """``n_variants`` distinct small requests (rank k differs by seed)."""
    return [
        {
            "scenario": scenario,
            "request": {
                "schema": "repro.request/1",
                "n_traces": n_traces,
                "seed": 1000 + rank,
                "precision": "float32",
            },
        }
        for rank in range(n_variants)
    ]


def _percentiles(values: list[float]) -> dict:
    if not values:
        return {}
    ordered = sorted(values)

    def pct(q: float) -> float:
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return round(ordered[index] * 1e3, 3)  # milliseconds

    return {
        "p50_ms": pct(0.50),
        "p95_ms": pct(0.95),
        "max_ms": round(ordered[-1] * 1e3, 3),
        "n": len(ordered),
    }


def run_load(
    host: str,
    port: int,
    *,
    total_requests: int,
    concurrency: int = 4,
    n_variants: int = 12,
    n_traces: int = 32,
    seed: int = 0x10AD,
    token: str | None = None,
    poll: float = 0.01,
    result_timeout: float = 300.0,
) -> LoadReport:
    """Run the closed loop and aggregate a :class:`LoadReport`.

    ``total_requests`` completed runs are split across ``concurrency``
    threads; each thread samples the zipf-ish variant population
    independently (deterministically, from ``seed``), so the mix is
    reproducible run to run.
    """
    variants = zipf_variants(n_variants, n_traces=n_traces)
    weights = [1.0 / (rank + 1) for rank in range(n_variants)]
    samples: list[LoadSample] = []
    rejected = [0]
    lock = threading.Lock()
    per_thread = [
        total_requests // concurrency + (1 if i < total_requests % concurrency else 0)
        for i in range(concurrency)
    ]

    def generate(thread_index: int) -> None:
        rng = random.Random(seed + thread_index)
        client = ServiceClient(host, port, token=token)
        with client:
            for _ in range(per_thread[thread_index]):
                (variant_index,) = rng.choices(range(n_variants), weights=weights)
                payload = variants[variant_index]
                started = time.perf_counter()
                while True:
                    try:
                        submitted = client.submit(
                            payload["scenario"], dict(payload["request"])
                        )
                        break
                    except ServiceError as error:
                        if error.status != 429:
                            raise
                        with lock:
                            rejected[0] += 1
                        time.sleep(error.retry_after or 0.1)
                envelope = client.result(
                    submitted["id"], wait=True, timeout=result_timeout, poll=poll
                )
                sample = LoadSample(
                    variant=variant_index,
                    disposition=submitted.get("cache", "miss"),
                    latency_s=time.perf_counter() - started,
                    state="failed" if envelope.get("error") else "done",
                )
                with lock:
                    samples.append(sample)

    depth_seen = [0]
    bound_seen: list[int | None] = [None]
    stop_sampling = threading.Event()

    def sample_depth() -> None:
        client = ServiceClient(host, port, token=token)
        with client:
            while not stop_sampling.is_set():
                try:
                    health = client.healthz()
                except (ServiceError, OSError):
                    break
                depth_seen[0] = max(depth_seen[0], int(health.get("queued", 0)))
                bound_seen[0] = health.get("queue_depth_bound")
                stop_sampling.wait(0.05)

    threads = [
        threading.Thread(target=generate, args=(index,), daemon=True)
        for index in range(concurrency)
    ]
    sampler = threading.Thread(target=sample_depth, daemon=True)
    started = time.perf_counter()
    sampler.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    stop_sampling.set()
    sampler.join(timeout=2.0)

    dispositions: dict[str, int] = {}
    for sample in samples:
        dispositions[sample.disposition] = dispositions.get(sample.disposition, 0) + 1
    completed = len(samples)
    failed = sum(1 for sample in samples if sample.state == "failed")
    deduped = dispositions.get("hit", 0) + dispositions.get("coalesced", 0)

    latency = {"all": _percentiles([sample.latency_s for sample in samples])}
    for disposition in ("miss", "hit", "coalesced"):
        series = [
            sample.latency_s for sample in samples if sample.disposition == disposition
        ]
        if series:
            latency[disposition] = _percentiles(series)
    speedup = None
    if latency.get("miss") and latency.get("hit"):
        hit_p50 = latency["hit"]["p50_ms"]
        if hit_p50 > 0:
            speedup = round(latency["miss"]["p50_ms"] / hit_p50, 2)

    return LoadReport(
        completed=completed,
        failed=failed,
        rejected_429=rejected[0],
        elapsed_s=elapsed,
        runs_per_min=completed / elapsed * 60.0 if elapsed > 0 else 0.0,
        dedup_rate=deduped / completed if completed else 0.0,
        dispositions=dispositions,
        latency=latency,
        cache_hit_speedup=speedup,
        max_queue_depth=depth_seen[0],
        max_queue_bound=bound_seen[0],
    )
