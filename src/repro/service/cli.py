"""``repro serve`` — the service front-end's command line.

Separate from the scenario-running parser in :mod:`repro.cli` (which
dispatches here when the first argument is ``serve``) so service flags
never collide with run knobs.
"""

from __future__ import annotations

import argparse
import sys

#: Default spool directory (gitignored; holds queue, results, cache).
DEFAULT_SPOOL = ".repro-spool"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve the scenario registry over HTTP/JSON: queued, "
            "deduplicated, quota-governed runs (see docs/service.md)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8737,
        help="bind port (0 = ephemeral; the bound port lands in <spool>/port)",
    )
    parser.add_argument(
        "--spool", default=DEFAULT_SPOOL, metavar="DIR",
        help=f"persistent queue/results/cache directory (default: {DEFAULT_SPOOL})",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes executing queued jobs (default: 2)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=256, metavar="N",
        help="global queued-job bound; beyond it submissions get 429 (default: 256)",
    )
    parser.add_argument(
        "--quota", type=int, default=16, metavar="N",
        help="default per-tenant in-flight job quota (default: 16)",
    )
    parser.add_argument(
        "--tenant", action="append", default=None, metavar="NAME=TOKEN[:QUOTA]",
        help=(
            "declare a tenant (repeatable). With any tenant declared the "
            "service requires bearer-token auth; without, it is open and "
            "all callers share the anonymous tenant's quota."
        ),
    )
    parser.add_argument(
        "--backend", choices=("auto", "serial", "fork", "spawn", "pool"), default=None,
        help="execution-backend default for worker sessions",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="per-chunk retry budget default for worker sessions",
    )
    parser.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="SECONDS",
        help="per-chunk watchdog deadline default for worker sessions",
    )
    parser.add_argument(
        "--reduce", choices=("parent", "worker"), default=None,
        help="statistic-reduction default for worker sessions",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be positive, got {args.workers}")
    if args.queue_depth < 1:
        parser.error(f"--queue-depth must be positive, got {args.queue_depth}")
    if args.quota < 1:
        parser.error(f"--quota must be positive, got {args.quota}")

    from repro.service.runtime import ServicePolicy, ServiceRuntime, parse_tenant_spec
    from repro.service.server import serve

    try:
        tenants = tuple(
            parse_tenant_spec(spec, args.quota) for spec in (args.tenant or ())
        )
    except ValueError as error:
        parser.error(str(error))
    policy = ServicePolicy(
        workers=args.workers,
        queue_depth=args.queue_depth,
        default_quota=args.quota,
        backend=args.backend,
        retries=args.retries,
        chunk_timeout=args.chunk_timeout,
        reduce=args.reduce,
        tenants=tenants,
    )
    runtime = ServiceRuntime(args.spool, policy)

    def ready(port: int) -> None:
        print(
            f"repro-serve listening on http://{args.host}:{port} "
            f"(spool: {args.spool}, workers: {args.workers})",
            flush=True,
        )

    try:
        serve(runtime, host=args.host, port=args.port, ready=ready)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via `repro serve`
    sys.exit(main())
