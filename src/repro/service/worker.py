"""The worker loop: claim → (cache-check) → execute → commit.

Each worker process holds one long-lived
:class:`~repro.api.session.Session` configured with the service's
execution policy (backend, retries, chunk timeout, reduction mode) and
drains the spool queue until the runtime's stop flag appears.  Every
envelope passes :func:`~repro.api.envelope.validate_envelope` before it
is committed, so the HTTP edge can serve result files without
re-validating.

A worker re-checks the result cache *after* claiming: a duplicate that
was enqueued before its twin finished is served from cache instead of
re-executed, which keeps the queue deduplicated even under races the
submit-side coalescing cannot see.
"""

from __future__ import annotations

import os
import time


def _stop_requested(spool: str) -> bool:
    return os.path.exists(os.path.join(spool, "stop"))


def run_worker(spool: str, policy: dict | None = None, poll_interval: float = 0.02) -> int:
    """Drain the queue at ``spool`` until stopped; returns jobs handled.

    ``policy`` carries session-level execution defaults
    (``backend``/``retries``/``chunk_timeout``/``reduce``); they apply
    only where a scenario supports them, exactly like any other session
    default.
    """
    # Heavy imports stay inside the worker entry so the server process
    # can spawn workers without paying for numpy itself.
    from repro.api import Session
    from repro.service.cache import ResultCache
    from repro.service.queue import JobQueue

    queue = JobQueue(spool)
    cache = ResultCache(os.path.join(spool, "cache"))
    policy = dict(policy or {})
    handled = 0
    with Session(**policy) as session:
        while not _stop_requested(spool):
            record = queue.claim()
            if record is None:
                time.sleep(poll_interval)
                continue
            handled += 1
            execute_job(session, queue, cache, record)
    return handled


def execute_job(session, queue, cache, record: dict) -> dict:
    """Run one claimed job record to completion (done or failed)."""
    from repro.api import Envelope, RunRequest, validate_envelope
    from repro.campaigns import registry

    cached = cache.get(record["key"])
    if cached is not None:
        record["cached"] = True
        return queue.finish(record, cached)
    started = time.perf_counter()
    try:
        scenario = registry.get(record["scenario"])
        request = RunRequest.from_json(record["request"], scenario)
        envelope_record = session.run(record["scenario"], request).to_json()
        validate_envelope(envelope_record)
    except Exception as error:  # noqa: BLE001 - jobs must not kill the worker
        message = f"{type(error).__name__}: {error}"
        failure = Envelope.failure(
            scenario=record["scenario"],
            title=record["scenario"],
            seconds=time.perf_counter() - started,
            error=message,
        ).to_json()
        return queue.fail(record, message, failure)
    cache.put(record["key"], envelope_record)
    return queue.finish(record, envelope_record)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.service.worker SPOOL [POLICY_JSON]``."""
    import json
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.service.worker SPOOL [POLICY_JSON]", file=sys.stderr)
        return 2
    policy = json.loads(args[1]) if len(args) > 1 else {}
    try:
        run_worker(args[0], policy)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
