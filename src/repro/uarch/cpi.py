"""The CPI-based microarchitecture characterization method of Section 3.2.

The paper measures the Clock-cycles-Per-Instruction of instruction-pair
microbenchmarks: 200 repetitions of a pair, padded by 100 ``nop``s, timed
through a GPIO edge on a 500 MS/s oscilloscope with the CPU locked at
120 MHz; the 200-``nop`` baseline and the GPIO toggling overhead are
subtracted.  Hazard-free sequences reveal the dual-issue capability
(CPI 0.5), artificially RAW-hazarded ones serialize (CPI >= 1).

This module reproduces the protocol against the pipeline model: the same
padding, the same repetition counts, the same baseline subtraction, and
the oscilloscope's +/-2 ns quantization.  ``measure_matrix`` regenerates
the data behind the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.executor import run_program
from repro.isa.parser import assemble
from repro.uarch.config import PipelineConfig
from repro.uarch.pipeline import Pipeline

#: Classes of Table 1, in the paper's row order.
TABLE1_ORDER = ("mov", "ALU", "ALU w/ imm", "branch", "ld/st", "mul", "shifts")
#: Column order used by the paper's Table 1 header.
TABLE1_COLUMNS = ("mov", "ALU", "ALU w/ imm", "mul", "shifts", "branch", "ld/st")


@dataclass(frozen=True)
class TimingScope:
    """The oscilloscope + GPIO timing rig of the paper's setup."""

    clock_hz: float = 120e6
    resolution_s: float = 2e-9  # Picoscope 5203 timing precision
    gpio_overhead_cycles: int = 6

    def measure_cycles(self, cycles: int) -> float:
        """Observed cycle count after converting through quantized time."""
        seconds = (cycles + self.gpio_overhead_cycles) / self.clock_hz
        quantized = round(seconds / self.resolution_s) * self.resolution_s
        return quantized * self.clock_hz - self.gpio_overhead_cycles


@dataclass(frozen=True)
class ClassTemplate:
    """How to materialize one Table-1 instruction class as assembly.

    ``emit(dst, src_a, src_b, uniq)`` returns one instruction reading the
    given sources and writing ``dst`` (classes without a destination, like
    branches, ignore it).  ``uniq`` disambiguates branch labels.
    """

    name: str
    writes_dest: bool

    def emit(self, dst: str, src_a: str, src_b: str, uniq: str) -> str:
        if self.name == "mov":
            return f"mov {dst}, {src_a}"
        if self.name == "ALU":
            return f"add {dst}, {src_a}, {src_b}"
        if self.name == "ALU w/ imm":
            # A word-aligned immediate keeps hazard-chained values usable
            # as load addresses in the ld/st hazard variants.
            return f"add {dst}, {src_a}, #8"
        if self.name == "mul":
            return f"mul {dst}, {src_a}, {src_b}"
        if self.name == "shifts":
            return f"lsl {dst}, {src_a}, #3"
        if self.name == "branch":
            return f"b {uniq}\n{uniq}:"
        if self.name == "ld/st":
            return f"ldr {dst}, [{src_a}]"
        if self.name == "nop":
            return "nop"
        raise ValueError(f"unknown class template {self.name}")


TEMPLATES = {
    "mov": ClassTemplate("mov", True),
    "ALU": ClassTemplate("ALU", True),
    "ALU w/ imm": ClassTemplate("ALU w/ imm", True),
    "mul": ClassTemplate("mul", True),
    "shifts": ClassTemplate("shifts", True),
    "branch": ClassTemplate("branch", False),
    "ld/st": ClassTemplate("ld/st", True),
    "nop": ClassTemplate("nop", False),
}

#: Scratch word that points to itself, so a loaded value is again a valid
#: load address (lets hazard variants chain loads: ``ldr r1,[r10]`` then
#: ``ldr r4,[r1]``).
_SELF_PTR = """
    .org 0x20000
scratch:
    .word scratch
scratch2:
    .word scratch2
"""


def pair_benchmark_source(
    older: str, younger: str, hazard: bool, reps: int = 200, pad_nops: int = 100
) -> str:
    """Assembly for one §3.2 microbenchmark.

    The older instruction uses ``r1 <- r2, r3`` and the younger
    ``r4 <- r5, r6`` when hazard-free; the hazard variant makes the
    younger read ``r1`` and the next older read ``r4``, forcing a RAW
    chain across the whole repetition.  The two-instruction prologue
    keeps the repeated pairs 64-bit aligned, as in the paper's benchmark
    binaries (the A7 pairs instructions within a fetch window).
    """
    t_old, t_young = TEMPLATES[older], TEMPLATES[younger]
    lines = [
        "    ldr r10, =scratch",
        "    ldr r11, =scratch2",
        "    ldr r2, =scratch",
        "    ldr r3, =scratch2",
        "    ldr r5, =scratch",
        "    ldr r6, =scratch2",
    ]
    lines.extend(["    nop"] * pad_nops)
    for rep in range(reps):
        if hazard:
            a = t_old.emit("r1", "r4" if rep else "r2", "r3", f"bt{rep}a")
            b = t_young.emit("r4", "r1", "r6", f"bt{rep}b")
        else:
            a = t_old.emit("r1", "r2", "r3", f"bt{rep}a")
            b = t_young.emit("r4", "r5", "r6", f"bt{rep}b")
        lines.append("    " + a)
        lines.append("    " + b)
    lines.extend(["    nop"] * pad_nops)
    lines.append("    bx lr")
    lines.append(_SELF_PTR)
    return "\n".join(lines)


def baseline_source(pad_nops: int = 100) -> str:
    """The 200-nop baseline whose time the paper subtracts."""
    lines = ["    nop"] * (2 * pad_nops)
    lines.append("    bx lr")
    return "\n".join(lines)


@dataclass
class CpiMeasurement:
    """Measured CPI of one benchmark variant."""

    older: str
    younger: str
    hazard: bool
    cpi: float
    raw_cycles: int

    @property
    def dual_issued(self) -> bool:
        """The paper's criterion: a sustained CPI near 0.5."""
        return self.cpi < 0.75


def _schedule_cycles(source: str, config: PipelineConfig) -> int:
    program = assemble(source)
    result = run_program(program, max_steps=4_000_000)
    schedule = Pipeline(config).schedule(result.records)
    return schedule.n_cycles


def measure_pair_cpi(
    older: str,
    younger: str,
    hazard: bool = False,
    config: PipelineConfig | None = None,
    scope: TimingScope | None = None,
    reps: int = 200,
    pad_nops: int = 100,
) -> CpiMeasurement:
    """Measure CPI of one pair through the full §3.2 protocol."""
    config = config if config is not None else PipelineConfig()
    scope = scope if scope is not None else TimingScope()
    bench_cycles = _schedule_cycles(pair_benchmark_source(older, younger, hazard, reps, pad_nops), config)
    base_cycles = _schedule_cycles(baseline_source(pad_nops), config)
    # The prologue of the benchmark (6 ldr= pseudo-instructions -> 12
    # machine instructions) is not part of the measured window in the
    # paper (the GPIO is asserted after setup); subtract its cycles.
    prologue_cycles = 12
    observed_bench = scope.measure_cycles(bench_cycles - prologue_cycles)
    observed_base = scope.measure_cycles(base_cycles)
    cpi = (observed_bench - observed_base) / (2 * reps)
    return CpiMeasurement(older, younger, hazard, cpi, bench_cycles)


@dataclass
class CpiMatrix:
    """The full Table-1 data: hazard-free and hazard CPIs per class pair."""

    free: dict[tuple[str, str], CpiMeasurement] = field(default_factory=dict)
    hazard: dict[tuple[str, str], CpiMeasurement] = field(default_factory=dict)
    nop_cpi: float = 1.0

    def dual_issue(self, older: str, younger: str) -> bool:
        return self.free[(older, younger)].dual_issued

    def as_bool_matrix(self) -> dict[tuple[str, str], bool]:
        return {key: m.dual_issued for key, m in self.free.items()}


def measure_matrix(
    config: PipelineConfig | None = None,
    scope: TimingScope | None = None,
    reps: int = 200,
    pad_nops: int = 100,
    with_hazards: bool = True,
) -> CpiMatrix:
    """Run the complete 7x7 (plus nop) campaign behind Table 1."""
    matrix = CpiMatrix()
    for older in TABLE1_ORDER:
        for younger in TABLE1_COLUMNS:
            matrix.free[(older, younger)] = measure_pair_cpi(
                older, younger, False, config, scope, reps, pad_nops
            )
            if with_hazards and TEMPLATES[older].writes_dest and TEMPLATES[younger].writes_dest:
                matrix.hazard[(older, younger)] = measure_pair_cpi(
                    older, younger, True, config, scope, reps, pad_nops
                )
    nop_measurement = measure_pair_cpi("nop", "nop", False, config, scope, reps, pad_nops)
    matrix.nop_cpi = nop_measurement.cpi
    return matrix
