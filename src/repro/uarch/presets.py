"""Named pipeline configurations: the characterized A7 and its ablations."""

from __future__ import annotations

from repro.uarch.config import IssuePairing, PipelineConfig


def cortex_a7() -> PipelineConfig:
    """The Cortex-A7 MPCore as characterized in the paper (Figure 2)."""
    return PipelineConfig()


def cortex_a7_single_issue() -> PipelineConfig:
    """Dual-issue disabled: the §4.2(iii) ablation.

    Semantically identical execution whose operand-bus collisions differ,
    demonstrating that the *pairing* of instructions (not their data flow)
    decides part of the leakage.
    """
    return PipelineConfig(name="cortex-a7-single-issue", dual_issue=False)


def cortex_a7_sliding_issue() -> PipelineConfig:
    """Pairing from a sliding window instead of aligned fetch groups.

    Hypothetical variant used to show that Table 1's measured asymmetry
    (``ldr;mov`` pairs, ``mov;ldr`` does not) requires aligned pairing.
    """
    return PipelineConfig(name="cortex-a7-sliding", issue_pairing=IssuePairing.SLIDING)


def cortex_a7_no_remanence() -> PipelineConfig:
    """LSU buffers cleared between accesses: the §4.2(iv) ablation."""
    return PipelineConfig(name="cortex-a7-no-remanence", lsu_remanence=False)


def cortex_a7_quiet_nop() -> PipelineConfig:
    """A hypothetical nop that drives no buses (not the real A7).

    Shows that the measured nop behaviour (zero operands on the issue
    bus, write-back bus reset) is what makes nop insertion *not*
    security-neutral (Section 4.1/4.2).
    """
    return PipelineConfig(
        name="cortex-a7-quiet-nop", nop_zeroes_issue_bus=False, nop_resets_wb_bus=False
    )


PRESETS = {
    "cortex-a7": cortex_a7,
    "cortex-a7-single-issue": cortex_a7_single_issue,
    "cortex-a7-sliding": cortex_a7_sliding_issue,
    "cortex-a7-no-remanence": cortex_a7_no_remanence,
    "cortex-a7-quiet-nop": cortex_a7_quiet_nop,
}

#: The paper's presentation order: the characterized baseline first,
#: then the Section-4 ablations in the order the text discusses them.
PRESET_ORDER = (
    "cortex-a7",
    "cortex-a7-single-issue",
    "cortex-a7-sliding",
    "cortex-a7-no-remanence",
    "cortex-a7-quiet-nop",
)


def preset_configs() -> list[PipelineConfig]:
    """The five characterized configs, in the paper's order.

    This is the degenerate "grid" of the design-space sweep engine: a
    sweep over exactly these points reproduces the §4.2 ablation table.
    """
    return [PRESETS[name]() for name in PRESET_ORDER]
