"""Pipeline configuration: the knobs of the modelled microarchitecture.

The defaults describe the ARM Cortex-A7 MPCore as characterized in
Section 3 of the paper (Figure 2 and Table 1).  Every ablation the
repository ships (dual-issue off, sliding issue window, LSU remanence
off, a scalar single-issue core) is expressed as a different
``PipelineConfig``; see :mod:`repro.uarch.presets`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class IssuePairing(enum.Enum):
    """How the issue stage forms dual-issue candidate pairs.

    ``FETCH_ALIGNED`` pairs instructions that were fetched together (the
    64-bit-aligned fetch window), which is what reproduces the measured
    *asymmetry* of the paper's Table 1: ``ldr;mov`` dual-issues while
    ``mov;ldr`` does not, which can only be observed if a half-consumed
    fetch pair does not re-pair with the next fetch group.  ``SLIDING``
    pairs any two consecutive instructions and is provided for ablation.
    """

    FETCH_ALIGNED = "fetch_aligned"
    SLIDING = "sliding"


@dataclass(frozen=True)
class PipelineConfig:
    """Structural and policy parameters of the superscalar pipeline."""

    name: str = "cortex-a7"
    # --- front end -----------------------------------------------------
    fetch_width: int = 2
    front_latency: int = 3  # F1, F2, Decode fill before first issue
    branch_penalty: int = 3  # flush bubbles for a taken, non-fallthrough branch
    # --- issue ----------------------------------------------------------
    dual_issue: bool = True
    issue_pairing: IssuePairing = IssuePairing.FETCH_ALIGNED
    rf_read_ports: int = 3
    rf_write_ports: int = 2
    #: read-port budget a load/store reserves (base + index lanes)
    ldst_port_cost: int = 2
    # --- execution latencies (issue-to-result, cycles) -------------------
    alu_latency: int = 1
    shift_alu_latency: int = 2  # ops routed through the barrel shifter
    mul_latency: int = 3
    load_latency: int = 3
    store_latency: int = 3
    fpu_latency: int = 4
    #: cycle (relative to issue) at which the MDR/align buffer transition
    mdr_stage: int = 2
    # --- policy quirks measured on the A7 (Table 1) ----------------------
    mul_pairs_only_with_branch: bool = True
    younger_ldst_requires_imm_older: bool = True
    younger_shift_requires_movimm_older: bool = True
    older_shift_requires_imm_younger: bool = True
    nop_never_dual_issues: bool = True
    # --- nop microarchitectural behaviour (Section 4.1) ------------------
    nop_zeroes_issue_bus: bool = True
    nop_resets_wb_bus: bool = True
    # --- LSU data remanence (Section 4.2 point iv) ------------------------
    lsu_remanence: bool = True

    def with_overrides(self, **kwargs) -> "PipelineConfig":
        """A copy with selected fields replaced (ablation helper)."""
        return replace(self, **kwargs)

    def latency_for(self, unit_latencies_key: str) -> int:
        return getattr(self, unit_latencies_key)
