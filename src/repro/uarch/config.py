"""Pipeline configuration: the knobs of the modelled microarchitecture.

The defaults describe the ARM Cortex-A7 MPCore as characterized in
Section 3 of the paper (Figure 2 and Table 1).  Every ablation the
repository ships (dual-issue off, sliding issue window, LSU remanence
off, a scalar single-issue core) is expressed as a different
``PipelineConfig``; see :mod:`repro.uarch.presets`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields, replace


class IssuePairing(enum.Enum):
    """How the issue stage forms dual-issue candidate pairs.

    ``FETCH_ALIGNED`` pairs instructions that were fetched together (the
    64-bit-aligned fetch window), which is what reproduces the measured
    *asymmetry* of the paper's Table 1: ``ldr;mov`` dual-issues while
    ``mov;ldr`` does not, which can only be observed if a half-consumed
    fetch pair does not re-pair with the next fetch group.  ``SLIDING``
    pairs any two consecutive instructions and is provided for ablation.
    """

    FETCH_ALIGNED = "fetch_aligned"
    SLIDING = "sliding"


@dataclass(frozen=True)
class PipelineConfig:
    """Structural and policy parameters of the superscalar pipeline."""

    name: str = "cortex-a7"
    # --- front end -----------------------------------------------------
    fetch_width: int = 2
    front_latency: int = 3  # F1, F2, Decode fill before first issue
    branch_penalty: int = 3  # flush bubbles for a taken, non-fallthrough branch
    # --- issue ----------------------------------------------------------
    dual_issue: bool = True
    issue_pairing: IssuePairing = IssuePairing.FETCH_ALIGNED
    rf_read_ports: int = 3
    rf_write_ports: int = 2
    #: read-port budget a load/store reserves (base + index lanes)
    ldst_port_cost: int = 2
    # --- execution latencies (issue-to-result, cycles) -------------------
    alu_latency: int = 1
    shift_alu_latency: int = 2  # ops routed through the barrel shifter
    mul_latency: int = 3
    load_latency: int = 3
    store_latency: int = 3
    fpu_latency: int = 4
    #: cycle (relative to issue) at which the MDR/align buffer transition
    mdr_stage: int = 2
    # --- policy quirks measured on the A7 (Table 1) ----------------------
    mul_pairs_only_with_branch: bool = True
    younger_ldst_requires_imm_older: bool = True
    younger_shift_requires_movimm_older: bool = True
    older_shift_requires_imm_younger: bool = True
    nop_never_dual_issues: bool = True
    # --- nop microarchitectural behaviour (Section 4.1) ------------------
    nop_zeroes_issue_bus: bool = True
    nop_resets_wb_bus: bool = True
    # --- LSU data remanence (Section 4.2 point iv) ------------------------
    lsu_remanence: bool = True

    #: the per-unit latency knobs ``latency_for`` may be asked about
    LATENCY_FIELDS = (
        "alu_latency",
        "shift_alu_latency",
        "mul_latency",
        "load_latency",
        "store_latency",
        "fpu_latency",
    )

    def with_overrides(self, **kwargs) -> "PipelineConfig":
        """A copy with selected fields replaced (ablation/sweep helper).

        Unless an explicit ``name=`` is part of the overrides, the copy
        is renamed with a deterministic ``+field=value`` suffix derived
        from the fields that actually changed, so sweep points, reports
        and cache diagnostics never show two distinct variants under the
        base preset's name (historically every override kept
        ``"cortex-a7"``).  Overrides that change nothing keep the name.
        """
        if "name" in kwargs:
            return replace(self, **kwargs)
        known = {f.name for f in fields(self)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise TypeError(
                f"unknown PipelineConfig field(s) {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(known - {'name'}))}"
            )
        changed = {
            key: value
            for key, value in sorted(kwargs.items())
            if getattr(self, key) != value
        }
        if not changed:
            return replace(self, **kwargs)
        suffix = ",".join(
            f"{key}={format_field_value(value)}" for key, value in changed.items()
        )
        return replace(self, name=f"{self.name}+{suffix}", **kwargs)

    def latency_for(self, unit_latencies_key: str) -> int:
        """The issue-to-result latency of one unit, by field name.

        Historically this was an unchecked ``getattr``: an unknown key
        would happily return *any* attribute (``"name"`` handed back a
        ``str``) and fail far from the call site.  Unknown keys now
        raise ``KeyError`` naming the valid options.
        """
        if unit_latencies_key not in self.LATENCY_FIELDS:
            raise KeyError(
                f"unknown latency key {unit_latencies_key!r}; "
                f"valid keys: {', '.join(self.LATENCY_FIELDS)}"
            )
        return getattr(self, unit_latencies_key)

    def identity(self) -> tuple:
        """Every structural field, excluding the display ``name``.

        Two configs with equal identity schedule and leak identically;
        the campaign engine's compiled-schedule cache keys on this so
        renamed variants (sweep points, ``with_overrides`` copies) share
        one compilation.
        """
        return tuple(
            getattr(self, f.name) for f in fields(self) if f.name != "name"
        )

    def overrides_from(self, base: "PipelineConfig") -> dict:
        """The field values by which this config differs from ``base``."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "name" and getattr(self, f.name) != getattr(base, f.name)
        }


def format_field_value(value) -> str:
    """Canonical short spelling of a config field value (names, CLI)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, enum.Enum):
        return str(value.value)
    return str(value)
