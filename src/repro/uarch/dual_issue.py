"""The partial dual-issue policy of the modelled Cortex-A7.

``DualIssueChecker.check(older, younger)`` decides whether a candidate
instruction pair may issue in the same cycle, and *why not* when it may
not.  The decision combines:

* structural constraints that follow from the pipeline of Figure 2
  (three register-file read ports, one load/store unit, one barrel
  shifter, one branch unit), and
* policy quirks measured on the real core via the CPI method of
  Section 3.2 (``mul`` pairs only with branches; a load/store can occupy
  the younger slot only after an immediate-operand ALU instruction; shift
  pairing restrictions; ``nop`` never dual-issues).

Together these reproduce all 49 cells of the paper's Table 1.  Each cell
of the matrix can be interrogated with :meth:`DualIssueChecker.explain`.

Register dependences *between* the two instructions of a pair (RAW on a
register or on the flags) are checked here too, since same-cycle
forwarding does not exist.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Cond, InstrClass, Opcode
from repro.isa.operands import RegShift, ShiftKind
from repro.uarch.config import PipelineConfig


@dataclass(frozen=True)
class IssueDecision:
    """Outcome of a dual-issue check: allowed or blocked by ``rule``."""

    allowed: bool
    rule: str
    detail: str = ""

    def __bool__(self) -> bool:
        return self.allowed


_ALLOWED = IssueDecision(True, "allowed")


def read_port_cost(instr: Instruction, config: PipelineConfig) -> int:
    """Register-file read ports the instruction reserves at issue.

    Loads/stores reserve ``ldst_port_cost`` lanes (base + index) even for
    immediate-offset forms: the AGU port pair is allocated as a unit,
    which is what makes ``ld/st + ALU`` pairs fail the 3-port budget and
    reproduces the corresponding Table 1 cells.
    """
    if instr.is_nop:
        return 0
    if instr.opcode in (Opcode.B, Opcode.BL):
        return 0
    if instr.is_memory:
        return max(config.ldst_port_cost, instr.read_port_count)
    return instr.read_port_count


class DualIssueChecker:
    """Implements the pair-issue policy described above."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config if config is not None else PipelineConfig()

    # ------------------------------------------------------------------

    def check(self, older: Instruction, younger: Instruction) -> IssueDecision:
        """Full check: class policy, structural budgets and dependences."""
        decision = self.check_classes(older, younger)
        if not decision:
            return decision
        return self._check_dependences(older, younger)

    def check_classes(self, older: Instruction, younger: Instruction) -> IssueDecision:
        """Class/policy/structural part (what Table 1 tabulates)."""
        config = self.config
        if not config.dual_issue:
            return IssueDecision(False, "dual-issue-disabled")
        a, b = older.instr_class, younger.instr_class

        if config.nop_never_dual_issues and (a is InstrClass.NOP or b is InstrClass.NOP):
            return IssueDecision(False, "nop-single-issue", "the A7 never dual-issues nop")
        if a is InstrClass.BRANCH and b is InstrClass.BRANCH:
            return IssueDecision(False, "one-branch-unit", "a single branch unit exists")
        if a is InstrClass.BRANCH or b is InstrClass.BRANCH:
            # Branch folding: a branch consumes no issue-slot resources.
            return _ALLOWED
        if config.mul_pairs_only_with_branch and (a is InstrClass.MUL or b is InstrClass.MUL):
            return IssueDecision(
                False, "mul-issues-alone", "mul only dual-issues with a branch"
            )
        if a is InstrClass.LDST and b is InstrClass.LDST:
            return IssueDecision(False, "one-lsu-port", "a single LSU issue port exists")
        if older.uses_shifter and younger.uses_shifter:
            return IssueDecision(False, "one-barrel-shifter", "only ALU1 has a shifter")
        if (
            config.younger_ldst_requires_imm_older
            and b is InstrClass.LDST
            and a is not InstrClass.ALU_IMM
        ):
            return IssueDecision(
                False,
                "younger-ldst-needs-imm-older",
                "a ld/st in the younger slot pairs only after an ALU-with-immediate",
            )
        if (
            config.younger_shift_requires_movimm_older
            and b is InstrClass.SHIFT
            and a not in (InstrClass.MOV, InstrClass.ALU_IMM)
        ):
            return IssueDecision(
                False,
                "younger-shift-needs-mov/imm-older",
                "a shift in the younger slot pairs only after mov or ALU-with-immediate",
            )
        if (
            config.older_shift_requires_imm_younger
            and a is InstrClass.SHIFT
            and b is not InstrClass.ALU_IMM
        ):
            return IssueDecision(
                False,
                "older-shift-needs-imm-younger",
                "a shift in the older slot pairs only with an ALU-with-immediate",
            )
        ports = read_port_cost(older, config) + read_port_cost(younger, config)
        if ports > config.rf_read_ports:
            return IssueDecision(
                False,
                "read-port-budget",
                f"pair needs {ports} read ports, only {config.rf_read_ports} exist",
            )
        return _ALLOWED

    def _check_dependences(self, older: Instruction, younger: Instruction) -> IssueDecision:
        written = set(older.writes())
        if written & set(younger.reads()):
            overlap = sorted(str(r) for r in written & set(younger.reads()))
            return IssueDecision(
                False, "raw-hazard", f"younger reads {', '.join(overlap)} written by older"
            )
        if written & set(younger.writes()):
            return IssueDecision(False, "waw-hazard", "both write the same register")
        if older.set_flags and _reads_flags(younger):
            return IssueDecision(False, "flags-hazard", "younger consumes flags set by older")
        return _ALLOWED

    # ------------------------------------------------------------------

    def explain(self, older: Instruction, younger: Instruction) -> str:
        """Human-readable account of the pairing decision (for audits)."""
        decision = self.check(older, younger)
        verdict = "dual-issues" if decision.allowed else f"blocked [{decision.rule}]"
        detail = f": {decision.detail}" if decision.detail else ""
        return f"({older}) + ({younger}) -> {verdict}{detail}"


def _reads_flags(instr: Instruction) -> bool:
    if instr.cond not in (Cond.AL, Cond.NV):
        return True
    if instr.opcode in (Opcode.ADC, Opcode.SBC):
        return True
    return isinstance(instr.op2, RegShift) and instr.op2.kind is ShiftKind.RRX
