"""A scalar in-order baseline core (Cortex-M0-class).

The related work the paper builds on ([18, 19] in its bibliography,
Seuschek et al.) characterized *scalar* microcontrollers and found the
register-file **write-port sharing** leak: the single write-back path
carries the destination values of consecutive instructions, so their
Hamming distance leaks even when the instructions are data-independent.

This module provides that baseline: a 3-stage, single-issue pipeline with
one ALU, one write-back bus and a single memory data register.  The
superscalar-vs-scalar ablation bench contrasts its leakage modes with the
Cortex-A7 model's (issue-bus pairs, dual-issue adjacency, align-buffer
remanence are all absent here; the write-port leak is shared).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.semantics import InstrRecord
from repro.isa.values import ValueKind
from repro.uarch import components as comp
from repro.uarch.components import Component, ComponentKind
from repro.uarch.events import ZERO_INDEX, BusEvent, Unit
from repro.uarch.pipeline import Schedule
from repro.uarch.config import PipelineConfig


@dataclass(frozen=True)
class ScalarConfig:
    """Timing knobs of the scalar core."""

    name: str = "scalar-m0"
    load_latency: int = 2
    branch_penalty: int = 2
    front_latency: int = 2
    mul_latency: int = 1  # M0 single-cycle multiplier option


def scalar_component_registry() -> dict[str, Component]:
    """The scalar core's (much smaller) component set."""
    components = [
        Component(comp.rf_read_port(1), ComponentKind.RF_READ, phase=0.05),
        Component(comp.rf_read_port(2), ComponentKind.RF_READ, phase=0.05),
        Component(comp.issue_bus(0, 1), ComponentKind.ISSUE_BUS, phase=0.45),
        Component(comp.issue_bus(0, 2), ComponentKind.ISSUE_BUS, phase=0.45),
        Component(comp.alu_out(Unit.ALU0), ComponentKind.ALU_OUT, phase=0.60, precharged=True),
        Component(comp.wb_bus(0), ComponentKind.WB_BUS, phase=0.20),
        Component(comp.MDR, ComponentKind.MDR, phase=0.55),
    ]
    return {c.name: c for c in components}


class ScalarPipeline:
    """Single-issue scheduler with the write-port-sharing leak of [18,19]."""

    def __init__(self, config: ScalarConfig | None = None):
        self.config = config if config is not None else ScalarConfig()
        self.components = scalar_component_registry()

    def latency(self, record: InstrRecord) -> int:
        if record.instr.is_load or record.instr.is_store:
            return self.config.load_latency
        if record.instr.is_multiply:
            return self.config.mul_latency
        return 1

    def schedule(self, records: list[InstrRecord]) -> Schedule:
        config = self.config
        n = len(records)
        issue_cycle = [0] * n
        wb_cycle: list[int | None] = [None] * n
        events: list[BusEvent] = []
        order = 0

        def push(cycle: int, component: str, dyn: int, kind: ValueKind | None) -> None:
            nonlocal order
            events.append(BusEvent(cycle, component, dyn, kind, order))
            order += 1

        cycle = config.front_latency
        for i, record in enumerate(records):
            instr = record.instr
            issue_cycle[i] = cycle
            latency = self.latency(record)
            if instr.is_nop:
                push(cycle, comp.issue_bus(0, 1), ZERO_INDEX, None)
                push(cycle, comp.issue_bus(0, 2), ZERO_INDEX, None)
                cycle += 1
                continue
            # Operand bus traffic (single issue slot).
            if instr.is_store:
                push(cycle, comp.issue_bus(0, 2), i, ValueKind.STORE_DATA)
            elif not instr.is_branch and not instr.is_memory:
                if instr.rn is not None or instr.is_multiply:
                    push(cycle, comp.issue_bus(0, 1), i, ValueKind.OP1)
                if instr.op2 is not None or instr.is_multiply:
                    push(cycle, comp.issue_bus(0, 2), i, ValueKind.OP2)
            if record.executed:
                if not instr.is_branch and not instr.is_memory:
                    push(cycle + latency, comp.alu_out(Unit.ALU0), i, ValueKind.RESULT)
                if record.writes_result:
                    # The single shared write port: the [18,19] leak.
                    push(cycle + latency, comp.wb_bus(0), i, ValueKind.RESULT)
                if instr.is_memory:
                    push(cycle + 1, comp.MDR, i, ValueKind.MEM_WORD)
                    wb_cycle[i] = cycle + latency
            cycle += latency if (instr.is_load or instr.is_multiply) else 1
            if record.taken and record.next_pc != instr.address + 4:
                cycle += config.branch_penalty

        n_cycles = max((e.cycle for e in events), default=cycle) + 2
        return Schedule(
            config=PipelineConfig(name=self.config.name, dual_issue=False),
            issue_cycle=issue_cycle,
            slot=[0] * n,
            unit=[Unit.ALU0] * n,
            wb_cycle=wb_cycle,
            dual=[False] * n,
            events=events,
            n_cycles=n_cycles,
        )
