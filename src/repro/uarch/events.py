"""Microarchitectural bus events: the pipeline's observable activity.

A :class:`BusEvent` says "at cycle ``cycle``, component ``component``
latched / asserted the value ``kind`` of dynamic instruction
``dyn_index``".  A ``dyn_index`` of ``ZERO_INDEX`` means the component was
driven to all-zeros (the behaviour the paper infers for the Cortex-A7
``nop`` on the issue operand buses and the write-back bus, Section 4.1).

Events are value *references*, not values: the same schedule is evaluated
against many random-input executions by the power synthesizer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.values import ValueKind

#: dyn_index used for explicit zero-drive events (nop resets).
ZERO_INDEX = -1


class Unit(enum.Enum):
    """Execution units of the modelled Cortex-A7 pipeline (Figure 2)."""

    ALU0 = "alu0"  # 1-stage simple ALU
    ALU1 = "alu1"  # 3-stage ALU with the barrel shifter and multiplier
    LSU = "lsu"  # 3-stage load/store unit
    FPU = "fpu"  # 4-stage FPU/NEON (modelled for completeness)
    BRANCH = "branch"  # branch resolution (folded at issue)
    NONE = "none"  # nop: occupies an issue slot, executes nowhere

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class BusEvent:
    """One value assertion on one component at one cycle."""

    cycle: int
    component: str
    dyn_index: int
    kind: ValueKind | None
    #: tie-break for multiple assertions on one component in one cycle
    order: int = 0

    @property
    def is_zero(self) -> bool:
        return self.dyn_index == ZERO_INDEX

    def __str__(self) -> str:
        what = "0" if self.is_zero else f"i{self.dyn_index}.{self.kind}"
        return f"@{self.cycle} {self.component} <= {what}"
