"""Cycle-accurate model of a Cortex-A7-like superscalar in-order pipeline.

The model reproduces the microarchitecture the paper infers in Section 3
(Figure 2): a partial dual-issue, 8-stage in-order pipeline with two
asymmetric ALUs (the barrel shifter and multiplier live on the second
one), a fully pipelined 3-stage load/store unit, three register-file read
ports, two write ports and a 2-instruction-per-cycle fetch unit.

Its distinguishing feature is the *microarchitectural event stream*: every
cycle, the model records which values are asserted on which shared
resources (issue-stage operand buses, execution-unit input latches, ALU
outputs, the barrel-shifter buffer, write-back port buses, the Memory Data
Register and the LSU align buffer).  The power model in
:mod:`repro.power` turns these value transitions into synthetic
side-channel traces.
"""

from repro.uarch.components import Component, ComponentKind, component_registry
from repro.uarch.config import PipelineConfig
from repro.uarch.dual_issue import DualIssueChecker, IssueDecision
from repro.uarch.events import BusEvent, Unit
from repro.uarch.pipeline import Pipeline, Schedule

__all__ = [
    "BusEvent",
    "Component",
    "ComponentKind",
    "DualIssueChecker",
    "IssueDecision",
    "Pipeline",
    "PipelineConfig",
    "Schedule",
    "Unit",
    "component_registry",
]
