"""The registry of leakage-relevant microarchitectural components.

Each component models one set of gates driving a large capacitive load
(the dominant side-channel source per Section 4 of the paper).  A
component has a *kind* (which family of Table 2 it belongs to), a
sub-cycle *phase* (where in the clock period its transition lands, which
lets the synthesizer place, say, the register-file read and the issue-bus
assertion of the same cycle at different sample positions), and a
*precharged* flag: precharged components leak the Hamming weight of each
asserted value (the paper's ALU output and shifter buffer behaviour),
while ordinary components leak the Hamming distance between consecutive
values (buses and latches with data remanence).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.uarch.events import Unit


class ComponentKind(enum.Enum):
    """Component families; these name the columns of the paper's Table 2."""

    RF_READ = "register file read port"
    ISSUE_BUS = "IS/EX issue operand bus"
    UNIT_LATCH = "execution unit input latch"
    AGU = "address generation bus"
    SHIFT_BUF = "barrel shifter output buffer"
    ALU_OUT = "ALU output buffer"
    WB_BUS = "EX/WB write-back bus"
    MDR = "memory data register"
    ALIGN = "LSU sub-word align buffer"
    IMM_PATH = "immediate path"


@dataclass(frozen=True)
class Component:
    """One tracked microarchitectural resource."""

    name: str
    kind: ComponentKind
    phase: float  # sub-cycle transition position in [0, 1)
    precharged: bool = False

    def __str__(self) -> str:
        return self.name


def rf_read_port(port: int) -> str:
    return f"rf_rp{port}"


def issue_bus(slot: int, position: int) -> str:
    return f"issue_op{position}_s{slot}"


def unit_latch(unit: Unit, position: int) -> str:
    return f"{unit.value}_in_op{position}"


def alu_out(unit: Unit) -> str:
    return f"{unit.value}_out"


def wb_bus(port: int) -> str:
    return f"wb_bus{port}"


AGU_ADDR = "agu_addr"
SHIFT_BUF = "shift_buf"
MDR = "mdr"
#: sub-word extraction on the load path (rotate/extract network latch)
ALIGN_LOAD = "align_load"
#: sub-word byte-lane merge on the store path (store buffer lanes)
ALIGN_STORE = "align_store"
IMM_PATH = "imm_path"


def component_registry(n_read_ports: int = 3, n_wb_ports: int = 2) -> dict[str, Component]:
    """Build the full component table for a pipeline configuration.

    Phases stagger the components of one clock period so that co-cycle
    events (e.g. the RF read and the issue-bus assertion of the same
    issue cycle) land on different trace samples, mirroring the paper's
    ability to attribute leakage "in the correct clock cycle" to distinct
    structures.
    """
    # Phase slots (with the default 4 samples/cycle): the register file
    # reads land on sub-sample 0, execution-unit latches and the shifter
    # buffer on 1, the issue buses / write-back buses / MDR on 2, and the
    # ALU outputs / AGU / align buffers on 3.  The slotting keeps the
    # structures the paper distinguishes ("leakage in the correct clock
    # cycle" attributed per component) on separable trace samples.
    components: list[Component] = []
    for port in range(1, n_read_ports + 1):
        components.append(Component(rf_read_port(port), ComponentKind.RF_READ, phase=0.05))
    for slot in (0, 1):
        for position in (1, 2):
            components.append(
                Component(issue_bus(slot, position), ComponentKind.ISSUE_BUS, phase=0.50)
            )
    components.append(Component(IMM_PATH, ComponentKind.IMM_PATH, phase=0.50))
    components.append(Component(AGU_ADDR, ComponentKind.AGU, phase=0.75))
    for unit in (Unit.ALU0, Unit.ALU1, Unit.LSU):
        for position in (1, 2):
            components.append(
                Component(unit_latch(unit, position), ComponentKind.UNIT_LATCH, phase=0.25)
            )
    # The shifter buffer sits on sub-sample 0 of its EX cycle, away from
    # the unit input latches, so its small HW leak is measurable on its
    # own sample (the paper quantifies it at ~1/10 of the others).
    components.append(Component(SHIFT_BUF, ComponentKind.SHIFT_BUF, phase=0.05, precharged=True))
    for unit in (Unit.ALU0, Unit.ALU1):
        components.append(Component(alu_out(unit), ComponentKind.ALU_OUT, phase=0.75, precharged=True))
    for port in range(n_wb_ports):
        components.append(Component(wb_bus(port), ComponentKind.WB_BUS, phase=0.50))
    components.append(Component(MDR, ComponentKind.MDR, phase=0.50))
    # The load-path extract network and the store-path byte lanes are
    # physically distinct latches; both exhibit the data remanence of
    # Section 4.1 (each keeps its last sub-word across interleaved word
    # accesses of the other kind).
    components.append(Component(ALIGN_LOAD, ComponentKind.ALIGN, phase=0.75))
    components.append(Component(ALIGN_STORE, ComponentKind.ALIGN, phase=0.75))
    return {component.name: component for component in components}
