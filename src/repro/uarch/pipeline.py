"""The cycle-accurate scheduler of the superscalar in-order pipeline.

``Pipeline.schedule`` consumes the *dynamic* instruction stream of one
program run (the executor's ``InstrRecord`` list) and produces a
:class:`Schedule`: per-instruction issue cycles, slot and unit
assignments, and the full microarchitectural event stream that the power
model evaluates.

The schedule of a program is data-independent under the model's
assumptions (warm caches, in-order issue, no data-dependent stalls), so
it is computed once per program and reused across every random-input
trace of an acquisition campaign.

Timing model:

* in-order issue, up to two instructions per cycle, pairing per the
  :class:`repro.uarch.dual_issue.DualIssueChecker` policy and, in
  ``FETCH_ALIGNED`` mode, only within 64-bit fetch windows (this aligned
  pairing is what reproduces the asymmetry of the paper's Table 1);
* registers become readable ``latency`` cycles after the producer's
  issue (full forwarding; no same-cycle forwarding inside a pair);
* every unit is fully pipelined (initiation interval 1), as the paper
  concludes for the LSU and the multiplier from sustained CPI 1;
* a taken branch whose target is not the fall-through address pays
  ``branch_penalty`` refill bubbles (branches resolve at issue).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Cond, Opcode
from repro.isa.operands import Imm, RegShift
from repro.isa.semantics import InstrRecord
from repro.isa.values import ValueKind
from repro.uarch import components as comp
from repro.uarch.config import IssuePairing, PipelineConfig
from repro.uarch.dual_issue import DualIssueChecker, _reads_flags
from repro.uarch.events import ZERO_INDEX, BusEvent, Unit


@dataclass
class Schedule:
    """Issue/writeback timing and the microarchitectural event stream."""

    config: PipelineConfig
    issue_cycle: list[int]
    slot: list[int]
    unit: list[Unit]
    wb_cycle: list[int | None]
    dual: list[bool]
    events: list[BusEvent]
    n_cycles: int

    @property
    def n_instructions(self) -> int:
        return len(self.issue_cycle)

    @property
    def issue_cycles_total(self) -> int:
        """Cycles from first issue to last writeback (drain included)."""
        return self.n_cycles

    def cpi(self, exclude_nops: bool = False, instructions: int | None = None) -> float:
        """Crude clock-per-instruction over the whole schedule."""
        count = instructions if instructions is not None else self.n_instructions
        if count == 0:
            return 0.0
        span = max(self.issue_cycle) - min(self.issue_cycle) + 1
        return span / count

    def events_for(self, component: str) -> list[BusEvent]:
        """Events on one component, via a lazily built per-component index.

        The Table-2 harness and the component tests call this once per
        component; a linear scan over the full event stream per call is
        O(components x events).  The index is built on first use and
        the returned list is a copy, so callers may mutate it freely.
        """
        index = getattr(self, "_events_by_component", None)
        if index is None:
            index = {}
            for event in self.events:
                index.setdefault(event.component, []).append(event)
            self._events_by_component = index
        return list(index.get(component, ()))

    def dual_issue_rate(self) -> float:
        if not self.dual:
            return 0.0
        return sum(self.dual) / len(self.dual)


class Pipeline:
    """Schedules dynamic instruction streams on the configured pipeline."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config if config is not None else PipelineConfig()
        self.checker = DualIssueChecker(self.config)
        self.components = comp.component_registry(
            self.config.rf_read_ports, self.config.rf_write_ports
        )

    # ------------------------------------------------------------------
    # Latency/unit helpers
    # ------------------------------------------------------------------

    def latency(self, instr: Instruction) -> int:
        config = self.config
        if instr.is_load:
            return config.load_latency
        if instr.is_store:
            return config.store_latency
        if instr.is_multiply:
            return config.mul_latency
        if instr.uses_shifter:
            return config.shift_alu_latency
        if instr.is_branch or instr.is_nop:
            return 1
        return config.alu_latency

    def _unit_for(self, instr: Instruction, taken_units: set[Unit]) -> Unit:
        if instr.is_nop:
            return Unit.NONE
        if instr.is_branch:
            return Unit.BRANCH
        if instr.is_memory:
            return Unit.LSU
        if instr.is_multiply or instr.uses_shifter:
            return Unit.ALU1
        if Unit.ALU0 not in taken_units:
            return Unit.ALU0
        return Unit.ALU1

    # ------------------------------------------------------------------
    # Main scheduling loop
    # ------------------------------------------------------------------

    def schedule(self, records: list[InstrRecord]) -> Schedule:
        config = self.config
        n = len(records)
        issue_cycle = [0] * n
        slots = [0] * n
        units = [Unit.NONE] * n
        wb_cycle: list[int | None] = [None] * n
        dual = [False] * n

        reg_ready: dict[int, int] = {}
        flags_ready = 0
        emitter = _EventEmitter(self.config)

        cycle = config.front_latency
        i = 0
        while i < n:
            first = records[i]
            ready = self._ready_cycle(first.instr, reg_ready, flags_ready)
            c = max(cycle, ready)

            pair: InstrRecord | None = None
            if config.dual_issue and i + 1 < n:
                candidate = records[i + 1]
                if (
                    self._pairable_addresses(first.instr, candidate.instr)
                    and self.checker.check(first.instr, candidate.instr)
                    and self._ready_cycle(candidate.instr, reg_ready, flags_ready) <= c
                ):
                    pair = candidate

            unit_a = self._unit_for(first.instr, set())
            self._issue(first, i, c, 0, unit_a, issue_cycle, slots, units, wb_cycle, reg_ready)
            emitter.emit(first, i, c, 0, unit_a, self.latency(first.instr))
            if first.instr.set_flags and first.executed:
                flags_ready = max(flags_ready, c + self.latency(first.instr))

            if pair is not None:
                j = i + 1
                unit_b = self._unit_for(pair.instr, {unit_a})
                self._issue(pair, j, c, 1, unit_b, issue_cycle, slots, units, wb_cycle, reg_ready)
                emitter.emit(pair, j, c, 1, unit_b, self.latency(pair.instr))
                if pair.instr.set_flags and pair.executed:
                    flags_ready = max(flags_ready, c + self.latency(pair.instr))
                dual[i] = dual[j] = True
                i += 2
                last = pair
            else:
                i += 1
                last = first

            cycle = c + 1
            for issued in (first, last):
                if issued.taken and issued.next_pc != issued.instr.address + 4:
                    cycle = c + 1 + config.branch_penalty
                    break

        n_cycles = (max((e.cycle for e in emitter.events), default=cycle) + 2)
        return Schedule(
            config=config,
            issue_cycle=issue_cycle,
            slot=slots,
            unit=units,
            wb_cycle=wb_cycle,
            dual=dual,
            events=emitter.events,
            n_cycles=n_cycles,
        )

    def _pairable_addresses(self, older: Instruction, younger: Instruction) -> bool:
        if younger.address != older.address + 4:
            return False  # not consecutive in fetch order (e.g. across a taken branch)
        if self.config.issue_pairing is IssuePairing.FETCH_ALIGNED:
            return older.address % 8 == 0
        return True

    def _ready_cycle(
        self, instr: Instruction, reg_ready: dict[int, int], flags_ready: int
    ) -> int:
        ready = 0
        for reg in instr.reads():
            ready = max(ready, reg_ready.get(int(reg), 0))
        if instr.cond is not Cond.AL or _reads_flags(instr):
            ready = max(ready, flags_ready)
        return ready

    def _issue(
        self,
        record: InstrRecord,
        index: int,
        cycle: int,
        slot: int,
        unit: Unit,
        issue_cycle: list[int],
        slots: list[int],
        units: list[Unit],
        wb_cycle: list[int | None],
        reg_ready: dict[int, int],
    ) -> None:
        issue_cycle[index] = cycle
        slots[index] = slot
        units[index] = unit
        latency = self.latency(record.instr)
        if record.executed and (record.writes_result or record.instr.is_store):
            wb_cycle[index] = cycle + latency
        if record.executed:
            for reg in record.instr.writes():
                reg_ready[int(reg)] = cycle + latency


class _EventEmitter:
    """Translates one issued instruction into its component events."""

    def __init__(self, config: PipelineConfig):
        self.config = config
        self.events: list[BusEvent] = []
        self._order = 0

    def _push(self, cycle: int, component: str, dyn_index: int, kind: ValueKind | None) -> None:
        self.events.append(BusEvent(cycle, component, dyn_index, kind, self._order))
        self._order += 1

    def emit(
        self,
        record: InstrRecord,
        dyn_index: int,
        cycle: int,
        slot: int,
        unit: Unit,
        latency: int,
    ) -> None:
        instr = record.instr
        config = self.config

        if instr.is_nop:
            if config.nop_zeroes_issue_bus:
                self._push(cycle, comp.issue_bus(slot, 1), ZERO_INDEX, None)
                self._push(cycle, comp.issue_bus(slot, 2), ZERO_INDEX, None)
            if config.nop_resets_wb_bus:
                for port in range(config.rf_write_ports):
                    self._push(cycle + 1, comp.wb_bus(port), ZERO_INDEX, None)
            return

        self._emit_rf_reads(record, dyn_index, cycle, slot)
        self._emit_issue_buses(record, dyn_index, cycle, slot)

        if instr.is_memory:
            self._push(cycle, comp.AGU_ADDR, dyn_index, ValueKind.ADDR)

        if not record.executed:
            return  # squashed: reads happened, execution did not

        self._emit_unit_latches(record, dyn_index, cycle, unit)

        if instr.uses_shifter:
            self._push(cycle + 1, comp.SHIFT_BUF, dyn_index, ValueKind.SHIFTED)

        if unit in (Unit.ALU0, Unit.ALU1):
            self._push(cycle + latency, comp.alu_out(unit), dyn_index, ValueKind.RESULT)

        if record.writes_result:
            self._push(cycle + latency, comp.wb_bus(slot), dyn_index, ValueKind.RESULT)
        elif instr.is_store:
            self._push(cycle + latency, comp.wb_bus(slot), dyn_index, ValueKind.STORE_DATA)

        if instr.is_memory:
            self._push(cycle + config.mdr_stage, comp.MDR, dyn_index, ValueKind.MEM_WORD)
            align: str | None = None
            if instr.access_width < 4:
                align = comp.ALIGN_LOAD if instr.is_load else comp.ALIGN_STORE
                self._push(cycle + config.mdr_stage, align, dyn_index, ValueKind.SUB_WORD)
            if not config.lsu_remanence:
                # Ablation: the LSU clears its data buffers after every
                # access, removing the Section-4.2(iv) remanence channel.
                self._push(cycle + config.mdr_stage + 1, comp.MDR, ZERO_INDEX, None)
                if align is not None:
                    self._push(cycle + config.mdr_stage + 1, align, ZERO_INDEX, None)

    # -- helpers ---------------------------------------------------------

    def _source_kinds(self, instr: Instruction) -> list[ValueKind]:
        """Value kinds of the register reads, matching ``Instruction.reads()``."""
        kinds: list[ValueKind] = []
        if instr.is_multiply:
            kinds = [ValueKind.OP1, ValueKind.OP2]
            if instr.opcode is Opcode.MLA:
                kinds.append(ValueKind.OP3)
        elif instr.is_memory:
            if instr.is_store:
                kinds.append(ValueKind.STORE_DATA)
            kinds.append(ValueKind.BASE)
            if instr.mem is not None and instr.mem.offset_is_reg:
                kinds.append(ValueKind.OFFSET)
        elif instr.opcode is Opcode.BX:
            kinds.append(ValueKind.OP1)
        elif instr.opcode is Opcode.MOVT:
            kinds.append(ValueKind.OP1)
        else:
            if instr.rn is not None:
                kinds.append(ValueKind.OP1)
            if isinstance(instr.op2, RegShift):
                kinds.append(ValueKind.OP2)
                if instr.op2.shift_by_register:
                    kinds.append(ValueKind.OP3)
        return kinds

    def _emit_rf_reads(self, record: InstrRecord, dyn_index: int, cycle: int, slot: int) -> None:
        base_port = 1 if slot == 0 else 3
        port = base_port
        for kind in self._source_kinds(record.instr):
            if port > self.config.rf_read_ports:
                port = self.config.rf_read_ports  # saturate (shared lane)
            self._push(cycle, comp.rf_read_port(port), dyn_index, kind)
            port += 1

    def _emit_issue_buses(self, record: InstrRecord, dyn_index: int, cycle: int, slot: int) -> None:
        instr = record.instr
        if instr.is_branch:
            return
        if instr.is_memory:
            if instr.is_store:
                self._push(cycle, comp.issue_bus(slot, 2), dyn_index, ValueKind.STORE_DATA)
            return
        if instr.is_multiply:
            self._push(cycle, comp.issue_bus(slot, 1), dyn_index, ValueKind.OP1)
            self._push(cycle, comp.issue_bus(slot, 2), dyn_index, ValueKind.OP2)
            return
        if instr.rn is not None or instr.opcode is Opcode.MOVT:
            self._push(cycle, comp.issue_bus(slot, 1), dyn_index, ValueKind.OP1)
        if isinstance(instr.op2, RegShift):
            self._push(cycle, comp.issue_bus(slot, 2), dyn_index, ValueKind.OP2)
        elif isinstance(instr.op2, Imm):
            self._push(cycle, comp.IMM_PATH, dyn_index, ValueKind.OP2)

    def _emit_unit_latches(
        self, record: InstrRecord, dyn_index: int, cycle: int, unit: Unit
    ) -> None:
        instr = record.instr
        if unit in (Unit.NONE, Unit.BRANCH):
            return
        latch_cycle = cycle + 1
        if unit is Unit.LSU:
            if instr.is_store:
                self._push(latch_cycle, comp.unit_latch(unit, 2), dyn_index, ValueKind.STORE_DATA)
            return
        if instr.rn is not None or instr.opcode is Opcode.MOVT or instr.is_multiply:
            self._push(latch_cycle, comp.unit_latch(unit, 1), dyn_index, ValueKind.OP1)
        if instr.is_multiply or instr.op2 is not None:
            self._push(latch_cycle, comp.unit_latch(unit, 2), dyn_index, ValueKind.OP2)
