"""Deduce the pipeline structure from CPI measurements (paper Section 3.2).

Given only the Table-1 CPI matrix (which instruction pairs sustain
CPI 0.5), this module re-derives every structural claim of the paper's
Figure 2:

* the fetch unit sustains two instructions per cycle;
* two ALUs exist, but they are not identical;
* exactly one ALU hosts the barrel shifter and the (pipelined) multiplier;
* the load/store unit is fully pipelined;
* the register file has three read ports and two write ports;
* load/store address generation happens in the Issue stage;
* ``nop`` is never dual-issued.

The method "CPI data employed to deduce the microarchitecture of a CPU"
is, per the paper, of independent interest; this module is its
executable form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.cpi import CpiMatrix

_DUAL = 0.75  # CPI below this means the pair dual-issued (paper criterion)
_PIPELINED = 1.25  # hazard-free same-class CPI <= ~1 means the unit is pipelined


@dataclass(frozen=True)
class InferredPipeline:
    """The structural deductions drawn from a CPI matrix."""

    fetch_width: int
    n_alus: int
    alus_identical: bool
    shifter_on_single_alu: bool
    multiplier_on_shifter_alu: bool
    lsu_pipelined: bool
    multiplier_pipelined: bool
    rf_read_ports: int
    rf_write_ports: int
    agu_in_issue_stage: bool
    nop_dual_issued: bool

    def describe(self) -> str:
        """Render the deductions as a Figure-2-style structure report."""
        lines = [
            "Inferred pipeline structure (from CPI analysis):",
            f"  fetch unit          : {self.fetch_width} instructions/cycle",
            f"  ALUs                : {self.n_alus}"
            + (" (identical)" if self.alus_identical else " (asymmetric)"),
            "  barrel shifter      : "
            + ("on one ALU only" if self.shifter_on_single_alu else "on every ALU"),
            "  multiplier          : "
            + ("co-located with the shifter ALU" if self.multiplier_on_shifter_alu else "separate")
            + (", pipelined" if self.multiplier_pipelined else ", iterative"),
            "  load/store unit     : "
            + ("fully pipelined" if self.lsu_pipelined else "blocking"),
            f"  RF read ports       : {self.rf_read_ports}",
            f"  RF write ports      : {self.rf_write_ports}",
            "  address generation  : "
            + ("in the Issue stage" if self.agu_in_issue_stage else "on an ALU"),
            "  nop                 : "
            + ("dual-issued" if self.nop_dual_issued else "never dual-issued"),
        ]
        return "\n".join(lines)


#: What the paper concludes for the Cortex-A7 (Figure 2).
CORTEX_A7_EXPECTED = InferredPipeline(
    fetch_width=2,
    n_alus=2,
    alus_identical=False,
    shifter_on_single_alu=True,
    multiplier_on_shifter_alu=True,
    lsu_pipelined=True,
    multiplier_pipelined=True,
    rf_read_ports=3,
    rf_write_ports=2,
    agu_in_issue_stage=True,
    nop_dual_issued=False,
)


def infer_pipeline(matrix: CpiMatrix) -> InferredPipeline:
    """Apply the Section-3.2 deduction chain to a measured CPI matrix."""

    def cpi(older: str, younger: str) -> float:
        return matrix.free[(older, younger)].cpi

    def dual(older: str, younger: str) -> bool:
        return cpi(older, younger) < _DUAL

    any_dual = any(m.dual_issued for m in matrix.free.values())
    fetch_width = 2 if any_dual else 1

    # Two arithmetic instructions dual-issue (one with an immediate), so
    # two ALUs exist; two register-register ALU ops never do, so the
    # register file cannot feed four operands: three read ports.
    two_alus = dual("ALU w/ imm", "ALU") or dual("mov", "ALU")
    n_alus = 2 if two_alus else 1
    rf_read_ports = 3 if (two_alus and not dual("ALU", "ALU")) else (4 if two_alus else 2)

    # Shifts never pair with each other and pair with almost nothing:
    # a single barrel shifter, hosted by one ALU only (otherwise a shift
    # would pair with a plain mov, which it does not as the older).
    shifter_single = not dual("shifts", "shifts")
    alus_identical = not shifter_single

    # mul pairs with no computational instruction: it lives on the same
    # (single) shifted ALU and monopolizes the issue group.
    mul_with_computational = any(
        dual(a, b)
        for a, b in [
            ("mul", "mov"), ("mov", "mul"), ("mul", "ALU w/ imm"), ("ALU w/ imm", "mul"),
        ]
    )
    multiplier_on_shifter_alu = shifter_single and not mul_with_computational

    # Sustained CPI 1 over hazard-free same-class sequences: pipelined.
    lsu_pipelined = cpi("ld/st", "ld/st") <= _PIPELINED
    multiplier_pipelined = cpi("mul", "mul") <= _PIPELINED

    # Loads dual-issue with immediate-operand arithmetic: the address
    # generation cannot be borrowing an ALU, so it sits in the Issue stage.
    agu_in_issue = dual("ALU w/ imm", "ld/st")

    # Sustained 0.5 CPI with both instructions writing a result needs two
    # write-back ports.
    rf_write_ports = 2 if dual("mov", "mov") else 1

    return InferredPipeline(
        fetch_width=fetch_width,
        n_alus=n_alus,
        alus_identical=alus_identical,
        shifter_on_single_alu=shifter_single,
        multiplier_on_shifter_alu=multiplier_on_shifter_alu,
        lsu_pipelined=lsu_pipelined,
        multiplier_pipelined=multiplier_pipelined,
        rf_read_ports=rf_read_ports,
        rf_write_ports=rf_write_ports,
        agu_in_issue_stage=agu_in_issue,
        nop_dual_issued=matrix.nop_cpi < _DUAL,
    )
