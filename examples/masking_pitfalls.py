"""Section 4.2, measured: how the microarchitecture un-masks masked code.

Each scenario builds two semantically equivalent (or trivially different)
code variants, acquires synthetic traces for both, and correlates the
*unmasked secret's* Hamming weight against the power: if masking works,
nothing correlates; if a microarchitectural collision recombines the
shares, the secret lights up.

Scenarios (all from the paper's Section 4.1/4.2):

* swapping the operands of a commutative eor        (points i + ii)
* dual-issue pairing across an unrelated instruction (point iii)
* inserting a semantically neutral nop               (Section 4.1)
* spilling both shares through the LSU byte lanes    (point iv)
* scheduling the shares to dual-issue in parallel    (defensive use)
* the scalar-core write-port baseline                (related work [18,19])

Runs the registered ``ablations`` scenario through the ``repro.api``
facade; the returned envelope bundles every contrast plus the Section
4.2 preset sweep.

Run:  python examples/masking_pitfalls.py
"""

from repro.api import Session


def main() -> None:
    print("Measuring all six masking-pitfall scenarios (2000 traces each)...\n")
    envelope = Session().run("ablations", n_traces=2000)
    print(envelope.render())
    print(
        "\nEvery contrast isolates one microarchitectural mechanism: the same\n"
        "shares, the same data flow, different pipeline-level value\n"
        "collisions. This is why the paper argues leakage models must be\n"
        "microarchitecture-aware."
        f"\n\nall contrasts demonstrated: {envelope.matches_paper}"
    )


if __name__ == "__main__":
    main()
