"""Audit masked assembly for microarchitectural share collisions.

The tool the paper motivates: given a routine and a declaration of which
registers hold which secret shares, report every pipeline-level value
collision that recombines them — including those invisible to an
ISA-level analysis (operand swaps, dual-issue adjacency, write-back port
sharing, LSU remanence).

Run:  python examples/leakage_audit.py
"""

from repro.audit.auditor import IsaLevelAuditor, MicroarchAuditor
from repro.isa.parser import assemble
from repro.isa.registers import Reg

#: r5 holds the masked value (v ^ m), r6 the mask m.
TAINTS = {Reg.R5: frozenset({"masked"}), Reg.R6: frozenset({"mask"})}
FORBIDDEN = [frozenset({"masked", "mask"})]

VARIANTS = {
    "original (shares in the same operand position)": """
    eor r7, r5, r8
    eor r9, r6, r10
    bx lr
""",
    "operand-swapped second eor (ISA-equivalent!)": """
    eor r7, r5, r8
    eor r9, r10, r6
    bx lr
""",
    "shares separated by public fillers": """
    eor r7, r5, r8
    mov r9, r10
    mov r11, r10
    eor r12, r10, r6
    bx lr
""",
    "share spilled next to the other share (LSU remanence)": """
    movw r9, #0x9000
    movw r10, #0x9100
    strb r5, [r9]
    add r7, r8, #1
    strb r6, [r10]
    bx lr
""",
}


def main() -> None:
    for name, source in VARIANTS.items():
        program = assemble(source)
        micro = MicroarchAuditor(program, FORBIDDEN, TAINTS).audit()
        isa = IsaLevelAuditor(program, FORBIDDEN, TAINTS).audit()
        print(f"=== {name} ===")
        print(source.strip())
        print(f"-- ISA-level audit : {'clean' if isa.clean else f'{len(isa.findings)} finding(s)'}")
        print(f"-- microarch audit : {'clean' if micro.clean else f'{len(micro.findings)} finding(s)'}")
        for finding in micro.findings:
            print(f"     {finding}")
        print()

    print(
        "Every variant is ISA-clean (no architectural value ever combines\n"
        "the shares), yet only one survives the microarchitectural audit —\n"
        "Section 4.2 of the paper, as a tool."
    )


if __name__ == "__main__":
    main()
