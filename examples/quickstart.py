"""Quickstart: assemble a snippet, schedule it, synthesize leakage, test it.

This walks the full stack on a five-instruction kernel:

1. assemble ARM code;
2. run it and schedule it on the Cortex-A7 pipeline model;
3. look at the microarchitectural events (who touches which bus when);
4. acquire synthetic power traces for random inputs;
5. check with Pearson's correlation which intermediate values leak.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import Session
from repro.isa.executor import run_program
from repro.isa.parser import assemble
from repro.isa.registers import Reg
from repro.power.acquisition import random_inputs
from repro.power.hamming import hamming_distance, hamming_weight
from repro.power.scope import ScopeConfig
from repro.sca.stats import pearson_corr, significance_threshold
from repro.uarch.pipeline import Pipeline

SOURCE = """
    add r1, r2, r3        @ r2, r3: random inputs
    add r4, r5, r6        @ r5, r6: random inputs (single-issued after the first)
    eor r7, r1, r4
    mov r8, r7
    bx lr
"""


def main() -> None:
    program = assemble(SOURCE)
    print("== listing ==")
    print(program.listing())

    # Schedule once: timing is input-independent.
    result = run_program(program)
    schedule = Pipeline().schedule(result.records)
    print("\n== pipeline schedule ==")
    for record, cycle, slot, unit in zip(
        result.records, schedule.issue_cycle, schedule.slot, schedule.unit
    ):
        dual = "dual" if schedule.dual[record.dyn_index] else "    "
        print(f"  cycle {cycle:2d} slot {slot} {str(unit):6s} {dual}  {record.instr}")

    print("\n== microarchitectural events (issue-layer) ==")
    for event in schedule.events:
        if event.component.startswith(("issue_", "wb_")):
            print(f"  {event}")

    # Acquire 2000 synthetic traces with random r2, r3, r5, r6 through
    # the public API: the session owns the scope and the seed policy.
    session = Session(scope=ScopeConfig(noise_sigma=8.0, kernel=(1.0,)), seed=1)
    inputs = random_inputs(2000, reg_names=(Reg.R2, Reg.R3, Reg.R5, Reg.R6), seed=2)
    trace_set = session.acquire(program, inputs)
    print(f"\nacquired {trace_set.n_traces} traces x {trace_set.n_samples} samples")

    # Which of these models fits the measured power somewhere?
    r2, r5 = inputs.regs[Reg.R2], inputs.regs[Reg.R5]
    threshold = significance_threshold(trace_set.n_traces)
    models = {
        "HW(r2)                 ": hamming_weight(r2).astype(float),
        "HD(r2, r5) [op1 bus]   ": hamming_distance(r2, r5).astype(float),
        "HW(r2 + r3) [ALU out]  ": hamming_weight(
            (r2.astype(np.uint64) + inputs.regs[Reg.R3]).astype(np.uint32)
        ).astype(float),
        "HW(random junk)        ": np.random.default_rng(3).normal(size=len(r2)),
    }
    print(f"\n== leakage check (99.5% threshold |r| > {threshold:.3f}) ==")
    for label, model in models.items():
        corr = pearson_corr(model, trace_set.traces)
        peak = float(np.max(np.abs(corr)))
        verdict = "LEAKS" if peak > threshold else "quiet"
        print(f"  {label} peak |r| = {peak:.3f}  -> {verdict}")

    print(
        "\nNote the HD(r2, r5) leak: the two adds are data-independent, yet\n"
        "their first operands meet on the slot-0 issue bus — the paper's\n"
        "central observation."
    )


if __name__ == "__main__":
    main()
