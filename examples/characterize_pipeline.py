"""Characterize a CPU's microarchitecture from timing alone (paper §3).

Reproduces the paper's Table 1 (which instruction pairs dual-issue,
measured through the GPIO/oscilloscope protocol with hazard controls)
and Figure 2 (the pipeline structure deduced from those CPIs), then
does the same for an ablated single-issue core to show the method
discriminates — all driven through the public ``repro.api`` façade: a
session per modelled CPU, scenarios by name, uniform envelopes out.

Run:  python examples/characterize_pipeline.py
"""

from repro.api import Session
from repro.uarch.presets import cortex_a7_single_issue


def main() -> None:
    session = Session()
    print("Measuring the CPI matrix (7x7 class pairs, hazard-free + RAW)...")
    table1 = session.run("table1", reps=100)
    print()
    print(table1.render())

    print("\n\nDeduce the pipeline structure from the CPIs (Figure 2):\n")
    # The envelope carries the rich result object: reuse table1's
    # measured matrix instead of running the microbenchmarks again.
    from repro.experiments.figure2 import run_figure2

    figure2 = run_figure2(matrix=table1.result.matrix)
    print(figure2.render())
    print(f"\nmatches the paper: {figure2.matches_paper}")

    print("\n\nControl: the same method applied to a single-issue core:\n")
    scalar_session = Session(config=cortex_a7_single_issue())
    scalarized = scalar_session.run("figure2", reps=60)
    print(scalarized.render())
    print(f"\nmatches the paper: {scalarized.matches_paper} (by design: ablated core)")


if __name__ == "__main__":
    main()
