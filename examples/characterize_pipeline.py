"""Characterize a CPU's microarchitecture from timing alone (paper §3).

Reproduces the paper's Table 1 (which instruction pairs dual-issue,
measured through the GPIO/oscilloscope protocol with hazard controls)
and Figure 2 (the pipeline structure deduced from those CPIs), then
does the same for an ablated single-issue core to show the method
discriminates.

Run:  python examples/characterize_pipeline.py
"""

from repro.experiments.figure2 import run_figure2
from repro.experiments.table1 import run_table1
from repro.uarch.presets import cortex_a7_single_issue


def main() -> None:
    print("Measuring the CPI matrix (7x7 class pairs, hazard-free + RAW)...")
    table1 = run_table1(reps=100, pad_nops=40)
    print()
    print(table1.render())

    print("\n\nDeduce the pipeline structure from the CPIs (Figure 2):\n")
    figure2 = run_figure2(matrix=table1.matrix)
    print(figure2.render())

    print("\n\nControl: the same method applied to a single-issue core:\n")
    scalarized = run_figure2(config=cortex_a7_single_issue(), reps=60)
    print(scalarized.render())


if __name__ == "__main__":
    main()
