"""Attack the AES implementation: Figure 3 and Figure 4 end to end.

Part 1 reproduces Figure 3: a bare-metal CPA with the coarse
HW(SubBytes-output) model, plotted over the first round with the
primitive boundaries annotated.

Part 2 recovers the *entire* 16-byte key with a low-noise campaign
(what the paper's 100k-trace hardware budget achieves).

Part 3 reproduces Figure 4: the same AES as a userspace process on a
fully loaded Linux box, attacked with the microarchitecture-aware
HD(consecutive SubBytes stores) model from 100 averaged traces.

Everything runs through the public ``repro.api`` façade: scenarios by
name for the paper figures, ``Session.acquire`` for the custom
key-recovery campaign.

Run:  python examples/attack_aes.py
"""

from repro.api import Session
from repro.crypto.aes_asm import LAYOUT, round1_only_program
from repro.power.acquisition import random_inputs
from repro.power.scope import ScopeConfig
from repro.sca.cpa import cpa_attack
from repro.sca.models import hw_sbox_model

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def full_key_recovery() -> None:
    print("\n== full key recovery (low-noise campaign, 800 traces) ==")
    program = round1_only_program(KEY)
    inputs = random_inputs(800, mem_blocks={LAYOUT.state: 16}, seed=11)
    session = Session(scope=ScopeConfig(noise_sigma=6.0, n_averages=16), seed=12)
    trace_set = session.acquire(program, inputs, entry="aes_round1")
    plaintexts = inputs.mem_bytes[LAYOUT.state]
    recovered = bytearray(16)
    for byte_index in range(16):
        result = cpa_attack(
            trace_set.traces, lambda g: hw_sbox_model(plaintexts, byte_index, g)
        )
        recovered[byte_index] = result.best_guess
        mark = "ok" if result.best_guess == KEY[byte_index] else "XX"
        print(
            f"  byte {byte_index:2d}: guess {result.best_guess:#04x} "
            f"(true {KEY[byte_index]:#04x}) [{mark}]  peak r = {result.best_corr:.3f}"
        )
    print(f"  recovered: {bytes(recovered).hex()}")
    print(f"  true key : {KEY.hex()}")
    print(f"  -> {'FULL KEY RECOVERED' if bytes(recovered) == KEY else 'partial recovery'}")


def main() -> None:
    session = Session()

    print("== Figure 3: bare-metal CPA, HW(SubBytes out) model ==\n")
    figure3 = session.run("figure3", n_traces=3000)
    print(figure3.render())

    full_key_recovery()

    print("\n== Figure 4: loaded Linux, HD(consecutive stores) model ==\n")
    figure4 = session.run("figure4", n_traces=100)
    print(figure4.render())

    print(
        "\nenvelope verdicts: "
        f"figure3 matches_paper={figure3.matches_paper}, "
        f"figure4 matches_paper={figure4.matches_paper}"
    )


if __name__ == "__main__":
    main()
