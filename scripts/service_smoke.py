"""CI service smoke: the HTTP service end to end, against a real process.

Four stories, each against a live ``repro serve`` on an ephemeral port:

1. **wire identity** — a figure3 envelope fetched over HTTP must be
   JSON-identical to ``repro figure3 --format json`` run locally with
   the same knobs (modulo the volatile ``seconds`` field, the same
   convention the other byte-identity CI checks use);
2. **dedup** — resubmitting the identical request must be served from
   the cache (``X-Repro-Cache: hit``, job born ``done``) with the very
   same envelope, without re-execution;
3. **backpressure** — with ``--quota 1``, a second in-flight job must be
   refused with 429 + ``Retry-After`` while the first still completes;
4. **restart survival** — ``kill -9`` the whole service mid-job, restart
   on the same spool, and the job must still complete with zero loss.

Usage: PYTHONPATH=src python scripts/service_smoke.py [--out service_report.json]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.service.client import ServiceClient, ServiceError

REQUEST = {"schema": "repro.request/1", "n_traces": 150, "seed": 5, "precision": "float32"}


def start_server(spool: str, *extra_args: str) -> tuple[subprocess.Popen, int]:
    port_path = os.path.join(spool, "port")
    try:
        # A restart into an existing spool must wait for the *new*
        # server's binding, not read the previous life's port file.
        os.unlink(port_path)
    except FileNotFoundError:
        pass
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in ("src", env.get("PYTHONPATH")) if p)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--spool", spool, "--workers", "1", *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if os.path.exists(port_path) and process.poll() is None:
            with open(port_path) as handle:
                return process, int(handle.read())
        if process.poll() is not None:
            raise AssertionError(f"server died at startup:\n{process.stdout.read()}")
        time.sleep(0.05)
    process.kill()
    raise AssertionError("server never wrote its port file")


def stop_server(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=5)


def stable(record: dict) -> str:
    record = dict(record)
    record.pop("seconds", None)  # wall time is the one volatile field
    return json.dumps(record, sort_keys=True)


def local_cli_envelope() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in ("src", env.get("PYTHONPATH")) if p)
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro", "figure3",
            "--traces", "150", "--seed", "5", "--precision", "float32",
            "--format", "json",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
        check=True,
    )
    (record,) = json.loads(completed.stdout)
    return record


def smoke_wire_identity_and_dedup(report: dict) -> None:
    with tempfile.TemporaryDirectory() as tmp:
        process, port = start_server(os.path.join(tmp, "spool"))
        try:
            client = ServiceClient("127.0.0.1", port)
            first = client.submit("figure3", dict(REQUEST))
            assert first["cache"] == "miss", first
            served = client.result(first["id"], wait=True, timeout=600)
            local = local_cli_envelope()
            assert stable(served) == stable(local), "service envelope diverged from the local CLI"
            print("wire identity: service envelope byte-identical to the CLI")

            twin = client.submit("figure3", dict(REQUEST))
            assert twin["cache"] == "hit", twin
            assert twin["cached"] is True, twin
            twin_env = client.result(twin["id"])  # born done: no polling
            assert stable(twin_env) == stable(served), "cached envelope diverged"
            print("dedup: duplicate served from cache (X-Repro-Cache: hit)")
            report["wire_identity"] = {"matches_cli": True}
            report["dedup"] = {"disposition": twin["cache"], "identical": True}
        finally:
            stop_server(process)


def smoke_quota_backpressure(report: dict) -> None:
    with tempfile.TemporaryDirectory() as tmp:
        process, port = start_server(os.path.join(tmp, "spool"), "--quota", "1")
        try:
            client = ServiceClient("127.0.0.1", port)
            slow = {"schema": "repro.request/1", "n_traces": 4000, "seed": 1}
            first = client.submit("figure3", slow)
            try:
                client.submit("figure3", dict(slow, seed=2))
            except ServiceError as error:
                assert error.status == 429, error.status
                assert error.retry_after is not None, "429 without Retry-After"
            else:
                raise AssertionError("second in-flight job was not refused at quota 1")
            served = client.result(first["id"], wait=True, timeout=600)
            assert served["scenario"] == "figure3"
            print("backpressure: quota 1 refuses with 429 + Retry-After; first job completes")
            report["backpressure"] = {"status": 429, "first_job_completed": True}
        finally:
            stop_server(process)


def smoke_restart_survival(report: dict) -> None:
    with tempfile.TemporaryDirectory() as tmp:
        spool = os.path.join(tmp, "spool")
        process, port = start_server(spool)
        client = ServiceClient("127.0.0.1", port)
        request = {"schema": "repro.request/1", "n_traces": 6000, "seed": 3}
        submission = client.submit("figure3", request)
        # wait until a worker has claimed it, then kill ungracefully
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if client.status(submission["id"])["state"] != "queued":
                break
            time.sleep(0.05)
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=10)

        started = time.monotonic()
        restarted, port = start_server(spool)
        try:
            client = ServiceClient("127.0.0.1", port)
            served = client.result(submission["id"], wait=True, timeout=600)
            assert served["scenario"] == "figure3"
            record = client.status(submission["id"])
            assert record["state"] == "done", record
            recovered_in = time.monotonic() - started
            print(f"restart: kill -9 mid-job, 0 lost, recovered in {recovered_in:.1f}s")
            report["restart"] = {"lost_jobs": 0, "recovered_in_s": round(recovered_in, 3)}
        finally:
            stop_server(restarted)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write a JSON report here")
    args = parser.parse_args(argv)

    report: dict = {"schema": "service_smoke/1"}
    smoke_wire_identity_and_dedup(report)
    smoke_quota_backpressure(report)
    smoke_restart_survival(report)

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.out}")
    print("service smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
