"""CI comms smoke: worker reduction is exact and shm never leaks.

Four stories:

1. **worker-reduction byte-identity** — the figure-3 CPA with
   ``reduce="worker"`` over a parallel backend must reproduce the
   serial parent-side fold *bit for bit* (float32 chain);
2. **shm success** — a fully consumed ``transport="shm"`` stream is
   byte-identical to serial and leaves no ``/dev/shm/repro-*`` segment;
3. **shm fault** — a transiently failing chunk, recovered by the retry
   budget under the shm transport, still byte-identical, still no
   leaked segments;
4. **shm SIGKILL recovery** — a shm-streaming subprocess killed
   mid-campaign may orphan segments, but re-running the same campaign
   (deterministic fingerprint-derived segment names) cleans them up and
   finishes byte-identical with zero leftovers.

Usage: PYTHONPATH=src python scripts/comms_smoke.py [--out comms_report.json]
"""

from __future__ import annotations

import argparse
import glob
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import textwrap

import numpy as np

from repro.backends import fork_available
from repro.backends.faults import FlakyTransform
from repro.backends.resilience import RetryPolicy, clear_quarantine
from repro.campaigns.engine import StreamingCampaign
from repro.isa.parser import assemble
from repro.isa.registers import Reg
from repro.power.acquisition import random_inputs
from repro.power.scope import ScopeConfig

SRC = """
    add r0, r1, r2
    eor r3, r0, r1
    lsl r4, r3, #3
    str r3, [r9]
    bx lr
    .org 0x30000
buf:
    .space 64
"""

N_TRACES = 96
CHUNK_SIZE = 24
SEED = 0xC0335
RETRY = RetryPolicy.from_retries(3, backoff_base=0.0)


def make_engine():
    return StreamingCampaign(
        assemble(SRC),
        scope=ScopeConfig(noise_sigma=3.0, precision="float32"),
        seed=SEED,
    )


def make_inputs():
    inputs = random_inputs(N_TRACES, reg_names=(Reg.R1, Reg.R2), seed=11)
    inputs.regs[Reg.R9] = np.full(N_TRACES, 0x30000, dtype=np.uint32)
    return inputs


def stream_traces(engine, inputs, **kwargs) -> np.ndarray:
    chunks = engine.stream(inputs, chunk_size=CHUNK_SIZE, **kwargs)
    return np.concatenate([chunk.traces for chunk in chunks if not chunk.replayed])


def sha(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def leaked_segments() -> list[str]:
    from repro.backends.shm import sweep_graveyard

    sweep_graveyard()
    return sorted(glob.glob("/dev/shm/repro-*"))


def scenario_worker_reduction(backend: str) -> dict:
    """figure3 under ``reduce="worker"`` == the serial parent fold."""
    from repro.experiments.figure3 import run_figure3

    common = dict(n_traces=240, chunk_size=60, precision="float32", seed=0xF16003)
    serial = run_figure3(**common)
    reduced = run_figure3(**common, jobs=2, backend=backend, reduce="worker")
    assert np.array_equal(
        reduced.cpa.correlations, serial.cpa.correlations
    ), "worker reduction diverged from the serial parent fold"
    assert reduced.cpa.best_guess == serial.cpa.best_guess
    return {
        "backend": backend,
        "correlations_sha256": sha(serial.cpa.correlations),
        "best_guess": int(serial.cpa.best_guess),
    }


def scenario_shm_success(clean_sha: str, backend: str) -> dict:
    traces = stream_traces(make_engine(), make_inputs(), jobs=2, backend=backend,
                           transport="shm")
    assert sha(traces) == clean_sha, "shm transport diverged from serial"
    leaks = leaked_segments()
    assert not leaks, f"shm success path leaked segments: {leaks}"
    return {"sha256": clean_sha, "leaked": []}


def scenario_shm_fault(clean_sha: str, workdir: str, backend: str) -> dict:
    flaky = FlakyTransform(os.path.join(workdir, "shm-flaky-ledger"), fail_times=2)
    traces = stream_traces(
        make_engine(), make_inputs(), jobs=2, backend=backend,
        power_transform=flaky, retry=RETRY, transport="shm",
    )
    assert sha(traces) == clean_sha, "shm + retry diverged from serial"
    leaks = leaked_segments()
    assert not leaks, f"shm fault path leaked segments: {leaks}"
    return {"sha256": clean_sha, "leaked": []}


#: Streams this script's campaign over shm and SIGKILLs itself after the
#: first chunk lands — deliberately orphaning any in-flight segments.
KILL_DRIVER = textwrap.dedent(
    """
    import importlib.util
    import os
    import signal
    import sys

    spec = importlib.util.spec_from_file_location("comms_smoke", sys.argv[1])
    comms = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(comms)

    stream = comms.make_engine().stream(
        comms.make_inputs(),
        chunk_size=comms.CHUNK_SIZE,
        jobs=2,
        backend=sys.argv[2],
        transport="shm",
    )
    next(stream)
    os.kill(os.getpid(), signal.SIGKILL)
    raise SystemExit("the kill never landed")
    """
)


def scenario_shm_kill_recovery(clean_sha: str, workdir: str, backend: str) -> dict:
    driver = os.path.join(workdir, "shm_kill_driver.py")
    with open(driver, "w") as handle:
        handle.write(KILL_DRIVER)
    # The SIGKILL orphans the driver's pool workers, which then spew
    # BrokenPipeError tracebacks at a dead pipe — expected collateral
    # of this story, not a diagnostic, so keep it off the CI log.
    proc = subprocess.run(
        [sys.executable, driver, os.path.abspath(__file__), backend],
        timeout=300,
        env={**os.environ, "PYTHONPATH": "src"},
        stderr=subprocess.DEVNULL,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"driver exited {proc.returncode}, expected SIGKILL"
    )
    orphaned = leaked_segments()

    # Segment names derive from the stream fingerprint, so the re-run
    # reclaims its predecessor's names chunk by chunk and its cleanup
    # sweep unlinks the rest.
    traces = stream_traces(
        make_engine(), make_inputs(), jobs=2, backend=backend, transport="shm"
    )
    assert sha(traces) == clean_sha, "post-kill re-run diverged from serial"
    leaks = leaked_segments()
    assert not leaks, f"segments survived the recovery re-run: {leaks}"
    return {"sha256": clean_sha, "orphaned_by_kill": orphaned, "leaked_after": []}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="comms_report.json")
    args = parser.parse_args(argv)

    from repro.backends.shm import shm_available

    backend = "fork" if fork_available() else "spawn"
    clean_sha = sha(stream_traces(make_engine(), make_inputs(), backend="serial"))
    print(f"clean serial reference: {clean_sha}")

    reports = {}
    clear_quarantine()
    reports["worker_reduction_exact"] = scenario_worker_reduction(backend)
    print("worker reduction: byte-identical to the serial parent fold")

    if shm_available():
        with tempfile.TemporaryDirectory(prefix="comms-smoke-") as workdir:
            clear_quarantine()
            reports["shm_success"] = scenario_shm_success(clean_sha, backend)
            print("shm success: byte-identical, no leaked segments")
            clear_quarantine()
            reports["shm_fault"] = scenario_shm_fault(clean_sha, workdir, backend)
            print("shm + retry: byte-identical, no leaked segments")
            clear_quarantine()
            reports["shm_kill_recovery"] = scenario_shm_kill_recovery(
                clean_sha, workdir, backend
            )
            print("shm SIGKILL recovery: cleaned up, byte-identical")
    else:
        reports["shm"] = "skipped: POSIX shared memory unavailable"
        print("shm stories skipped: POSIX shared memory unavailable")

    with open(args.out, "w") as handle:
        json.dump({"reference_sha256": clean_sha, "scenarios": reports}, handle, indent=2)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
