"""CI chaos smoke: injected faults must not change a single output byte.

Three stories, each compared against the same clean serial reference:

1. **flaky-then-succeed** — a transform that raises transiently for its
   first two attempts, recovered by the retry budget;
2. **hang-then-timeout** — a worker that sleeps far past the watchdog
   deadline once, detected by the timeout, pool rebuilt, chunk
   re-dispatched;
3. **kill-then-resume** — a checkpointing campaign SIGKILLed mid-stream
   in a subprocess, resumed here from its checkpoint.

Every recovered run must serialize to JSON byte-identical to the clean
run; each scenario's structured fault report is written to the ``--out``
path so CI can upload it as an artifact.

Usage: PYTHONPATH=src python scripts/chaos_smoke.py [--out chaos_report.json]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import textwrap

import numpy as np

from repro.backends import fork_available
from repro.backends.faults import FlakyTransform, HangingTransform
from repro.backends.resilience import RetryPolicy, clear_quarantine, collecting_faults
from repro.campaigns.checkpoint import Checkpointer
from repro.campaigns.engine import StreamingCampaign
from repro.isa.parser import assemble
from repro.isa.registers import Reg
from repro.power.acquisition import random_inputs
from repro.power.scope import ScopeConfig

SRC = """
    add r0, r1, r2
    eor r3, r0, r1
    lsl r4, r3, #3
    str r3, [r9]
    bx lr
    .org 0x30000
buf:
    .space 64
"""

N_TRACES = 96
CHUNK_SIZE = 24
SEED = 0xC0DE
#: zero backoff: CI replays the retry schedule, not the sleeps
RETRY = RetryPolicy.from_retries(3, backoff_base=0.0)


def make_engine():
    # float32: the capture chain whose byte-identity across every
    # backend is the documented contract (docs/backends.md).
    return StreamingCampaign(
        assemble(SRC),
        scope=ScopeConfig(noise_sigma=3.0, precision="float32"),
        seed=SEED,
    )


def make_inputs():
    inputs = random_inputs(N_TRACES, reg_names=(Reg.R1, Reg.R2), seed=11)
    inputs.regs[Reg.R9] = np.full(N_TRACES, 0x30000, dtype=np.uint32)
    return inputs


def summarize(chunks: dict[int, np.ndarray]) -> str:
    """One canonical JSON string per campaign outcome (byte-exact)."""
    traces = np.concatenate([chunks[i] for i in sorted(chunks)])
    return json.dumps(
        {
            "sha256": hashlib.sha256(traces.tobytes()).hexdigest(),
            "shape": list(traces.shape),
            "dtype": str(traces.dtype),
        },
        sort_keys=True,
    )


def stream_chunks(engine, inputs, **kwargs) -> dict[int, np.ndarray]:
    chunks: dict[int, np.ndarray] = {}
    for chunk in engine.stream(inputs, chunk_size=CHUNK_SIZE, **kwargs):
        if not chunk.replayed:
            chunks[chunk.index] = chunk.traces
    return chunks


def scenario_flaky(clean: str, workdir: str, backend: str) -> dict:
    flaky = FlakyTransform(os.path.join(workdir, "flaky-ledger"), fail_times=2)
    with collecting_faults() as report:
        chunks = stream_chunks(
            make_engine(), make_inputs(), jobs=2, backend=backend,
            power_transform=flaky, retry=RETRY,
        )
    recovered = summarize(chunks)
    assert recovered == clean, f"flaky run diverged:\n{recovered}\n{clean}"
    assert report.attempts >= 2 and report.retries, "no retry was recorded"
    return report.to_json()


def scenario_hang(clean: str, workdir: str, backend: str) -> dict:
    # skip=1: the parent-side calibration pass applies chunk 0's
    # transform outside the watchdog; the hang must land in a worker.
    hang = HangingTransform(
        os.path.join(workdir, "hang-ledger"), hang_times=1, hang_seconds=60.0, skip=1
    )
    with collecting_faults() as report:
        chunks = stream_chunks(
            make_engine(), make_inputs(), jobs=2, backend=backend,
            power_transform=hang, retry=RETRY, chunk_timeout=5.0,
        )
    recovered = summarize(chunks)
    assert recovered == clean, f"hung run diverged:\n{recovered}\n{clean}"
    assert report.timeouts >= 1, "the watchdog never fired"
    return report.to_json()


#: The kill driver reuses this script's own campaign recipe by
#: importing it as a module (the recipe constants live above).
KILL_DRIVER = textwrap.dedent(
    """
    import importlib.util
    import os
    import signal
    import sys

    spec = importlib.util.spec_from_file_location("chaos_smoke", sys.argv[2])
    chaos = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(chaos)
    from repro.campaigns.checkpoint import Checkpointer

    state = {}
    checkpointer = Checkpointer(sys.argv[1], state_fn=lambda: dict(state))
    for chunk in chaos.make_engine().stream(
        chaos.make_inputs(), chunk_size=chaos.CHUNK_SIZE, checkpoint=checkpointer
    ):
        state[chunk.index] = chunk.traces
        if len(state) == 2:
            os.kill(os.getpid(), signal.SIGKILL)
    raise SystemExit("the kill never landed")
    """
)


def scenario_kill_resume(clean: str, workdir: str) -> dict:
    ckpt = os.path.join(workdir, "ckpt")
    driver = os.path.join(workdir, "kill_driver.py")
    with open(driver, "w") as handle:
        handle.write(KILL_DRIVER)
    proc = subprocess.run(
        [sys.executable, driver, ckpt, os.path.abspath(__file__)],
        timeout=300,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"driver exited {proc.returncode}, expected SIGKILL"
    )

    restored: dict[int, np.ndarray] = {}
    with collecting_faults() as report:
        checkpointer = Checkpointer(
            ckpt,
            state_fn=lambda: dict(restored),
            restore_fn=lambda saved: restored.update(saved),
            resume=True,
        )
        for chunk in make_engine().stream(
            make_inputs(), chunk_size=CHUNK_SIZE, checkpoint=checkpointer
        ):
            if not chunk.replayed:
                restored[chunk.index] = chunk.traces
    assert checkpointer.resumed_from >= 1, "nothing was resumed from the checkpoint"
    recovered = summarize(restored)
    assert recovered == clean, f"resumed run diverged:\n{recovered}\n{clean}"
    return report.to_json()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="chaos_report.json")
    args = parser.parse_args(argv)

    backend = "fork" if fork_available() else "spawn"
    clean = summarize(stream_chunks(make_engine(), make_inputs(), backend="serial"))
    print(f"clean serial reference: {clean}")

    reports = {}
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as workdir:
        clear_quarantine()
        reports["flaky_then_succeed"] = scenario_flaky(clean, workdir, backend)
        print("flaky-then-succeed: recovered byte-identical")
        clear_quarantine()
        reports["hang_then_timeout"] = scenario_hang(clean, workdir, backend)
        print("hang-then-timeout: recovered byte-identical")
        clear_quarantine()
        reports["kill_then_resume"] = scenario_kill_resume(clean, workdir)
        print("kill-then-resume: recovered byte-identical")

    with open(args.out, "w") as handle:
        json.dump({"reference": json.loads(clean), "scenarios": reports}, handle, indent=2)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
