#!/usr/bin/env python
"""Hot-path benchmark harness: writes ``BENCH_hotpath.json``.

Measures the acquisition pipeline on the two paper campaigns that
dominate experiment wall-time — the Figure-3 bare-metal round-1 AES
campaign and the Figure-4 windowed full-AES campaign — with every
generation of the hot path still present in the codebase:

* **tape** — the trace-compiled op tape + packed-value evaluator
  (``TraceCampaign(use_tape=True)``, the default);
* **legacy** — the instruction-dispatching vectorized executor + the
  per-component ``np.add.at`` evaluator (``use_tape=False``), i.e. the
  pre-tape hot path, kept as the semantic reference;
* **float32** — the tape plus the counter-based float32 capture chain
  (``ScopeConfig(precision="float32")``), the current throughput mode.

Two further sections target the former bottlenecks directly:
``capture`` times the oscilloscope chain alone (float64-exact vs
float32), and ``attack_curves`` times the success-curve evaluation with
the recompute-per-budget attack loop vs the prefix-snapshot pass —
verifying on the way that both produce identical success rates.

Because all paths run in one process on the same inputs, the emitted
before/after numbers are same-machine, same-moment comparisons.  The
JSON is tracked in-repo so the perf trajectory is visible per PR; CI
runs ``--smoke`` and uploads the result as an artifact.

Usage::

    PYTHONPATH=src python scripts/bench.py [--smoke] [--out BENCH_hotpath.json]
                                           [--traces N] [--repeats K] [--jobs J]
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path

import numpy as np


def _measure(fn, repeats: int) -> dict:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {
        "min_s": round(min(times), 6),
        "median_s": round(sorted(times)[len(times) // 2], 6),
        "repeats": repeats,
    }


def _stage_timings(campaign, inputs, repeats: int) -> dict:
    """Per-stage timings of one acquisition: execute, evaluate, capture."""
    from repro.power.scope import Oscilloscope

    dtype = np.float32 if campaign.precision == "float32" else np.float64
    compiled = campaign.compile_with(inputs)
    result = campaign._run_batch(inputs, compiled)
    power = compiled.leakage.evaluate(result.table, campaign.profile, dtype=dtype)

    stages = {
        "execute": _measure(lambda: campaign._run_batch(inputs, compiled), repeats),
        "evaluate": _measure(
            lambda: compiled.leakage.evaluate(
                result.table, campaign.profile, dtype=dtype
            ),
            repeats,
        ),
        "capture": _measure(
            lambda: Oscilloscope(campaign.scope_config, seed=5).capture(power), repeats
        ),
    }

    def hot():
        batch = campaign._run_batch(inputs, compiled)
        compiled.leakage.evaluate(batch.table, campaign.profile, dtype=dtype)

    stages["hot_path"] = _measure(hot, repeats)
    stages["acquire"] = _measure(lambda: campaign.acquire(inputs), repeats)
    return stages


def _throughput(stats: dict, n_traces: int) -> float:
    return round(n_traces / stats["min_s"], 1)


def bench_figure3(n_traces: int, repeats: int) -> dict:
    """Round-1 AES bare-metal campaign (the Figure-3 acquisition)."""
    from repro.crypto.aes_asm import LAYOUT, round1_only_program
    from repro.experiments.figure3 import figure3_scope
    from repro.power.acquisition import TraceCampaign, random_inputs
    from repro.power.profile import cortex_a7_profile

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    program = round1_only_program(key)
    inputs = random_inputs(n_traces, mem_blocks={LAYOUT.state: 16}, seed=0xF16003)

    out = {"n_traces": n_traces}
    variants = (
        ("tape", True, "float64-exact"),
        ("legacy", False, "float64-exact"),
        ("float32", True, "float32"),
    )
    for label, use_tape, precision in variants:
        campaign = TraceCampaign(
            program,
            profile=cortex_a7_profile(),
            scope=figure3_scope(precision),
            entry="aes_round1",
            seed=1,
            use_tape=use_tape,
        )
        stages = _stage_timings(campaign, inputs, repeats)
        stages["traces_per_sec"] = {
            "hot_path": _throughput(stages["hot_path"], n_traces),
            "acquire": _throughput(stages["acquire"], n_traces),
        }
        out[label] = stages
    out["speedup"] = {
        stage: round(
            out["legacy"][stage]["min_s"] / out["tape"][stage]["min_s"], 2
        )
        for stage in ("execute", "evaluate", "hot_path", "acquire")
    }
    # The float32 chain against the PR-2 tape baseline (same process).
    out["speedup_float32"] = {
        stage: round(
            out["tape"][stage]["min_s"] / out["float32"][stage]["min_s"], 2
        )
        for stage in ("evaluate", "capture", "hot_path", "acquire")
    }
    return out


def bench_figure4_window(n_traces: int, repeats: int) -> dict:
    """Windowed full-AES campaign (the Figure-4 acquisition geometry)."""
    from repro.campaigns.engine import StreamingCampaign
    from repro.crypto.aes_asm import LAYOUT, aes128_program
    from repro.experiments.figure4 import _subbytes_window
    from repro.power.acquisition import TraceCampaign, random_inputs
    from repro.power.profile import cortex_a7_profile

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    program = aes128_program(key)
    inputs = random_inputs(n_traces, mem_blocks={LAYOUT.state: 16}, seed=0xF16004)
    prototype = StreamingCampaign(program, entry="aes_main", seed=0xF16004)
    window = _subbytes_window(program, prototype, inputs)

    out = {"n_traces": n_traces, "window_cycles": list(window)}
    for label, use_tape in (("tape", True), ("legacy", False)):
        campaign = TraceCampaign(
            program,
            profile=cortex_a7_profile(),
            entry="aes_main",
            window_cycles=window,
            seed=2,
            use_tape=use_tape,
        )
        stages = _stage_timings(campaign, inputs, repeats)
        stages["traces_per_sec"] = {
            "hot_path": _throughput(stages["hot_path"], n_traces),
            "acquire": _throughput(stages["acquire"], n_traces),
        }
        out[label] = stages
    out["speedup"] = {
        stage: round(
            out["legacy"][stage]["min_s"] / out["tape"][stage]["min_s"], 2
        )
        for stage in ("execute", "evaluate", "hot_path", "acquire")
    }
    return out


def bench_capture(n_traces: int, repeats: int) -> dict:
    """The oscilloscope chain alone: float64-exact vs float32.

    Runs both precision modes on the same noise-free figure-3 power
    matrix, so the contrast isolates the measurement-chain model
    (noise generation + FIR response + quantizer).
    """
    from repro.crypto.aes_asm import LAYOUT, round1_only_program
    from repro.experiments.figure3 import figure3_scope
    from repro.power.acquisition import TraceCampaign, random_inputs
    from repro.power.profile import cortex_a7_profile
    from repro.power.scope import Oscilloscope

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    program = round1_only_program(key)
    inputs = random_inputs(n_traces, mem_blocks={LAYOUT.state: 16}, seed=0xF16003)
    campaign = TraceCampaign(
        program, profile=cortex_a7_profile(), entry="aes_round1", seed=1
    )
    compiled = campaign.compile_with(inputs)
    result = campaign._run_batch(inputs, compiled)

    out = {"n_traces": n_traces}
    for label, precision in (("float64_exact", "float64-exact"), ("float32", "float32")):
        dtype = np.float32 if precision == "float32" else np.float64
        power = compiled.leakage.evaluate(result.table, campaign.profile, dtype=dtype)
        scope_config = figure3_scope(precision)
        out["n_samples"] = int(power.shape[1])
        stats = _measure(
            lambda: Oscilloscope(scope_config, seed=5).capture(power), repeats
        )
        stats["traces_per_sec"] = _throughput(stats, n_traces)
        out[label] = stats
    out["speedup"] = round(
        out["float64_exact"]["min_s"] / out["float32"]["min_s"], 2
    )
    return out


def bench_attack_curves(smoke: bool, repeats: int) -> dict:
    """Success-curve evaluation: recompute-per-budget vs prefix snapshot.

    ``legacy`` is the seed implementation (independent subsets, a full
    CPA with the 256-model stack rebuilt at every (budget, repeat)) —
    the recompute-per-budget baseline this PR replaces.  ``recompute``
    runs from-scratch attacks over the *same* nested-prefix subsets the
    snapshot path uses, so ``identical_rates`` certifies the snapshot
    evaluation is an exact replacement; ``snapshot_float32`` adds the
    float32 capture chain and single-precision accumulation on top (the
    full shipped fast path).
    """
    from repro.experiments.success_curves import run_success_curves

    if smoke:
        common = dict(
            trace_counts=tuple(range(50, 301, 50)), n_campaign=400, n_repeats=3
        )
    else:
        common = dict(
            trace_counts=tuple(range(25, 801, 25)), n_campaign=1200, n_repeats=10
        )

    out = {
        "n_campaign": common["n_campaign"],
        "n_budgets": len(common["trace_counts"]),
        "n_repeats": common["n_repeats"],
    }
    results = {}
    for label, kwargs in (
        ("legacy", dict(method="legacy")),
        ("recompute", dict(method="recompute")),
        ("snapshot", dict(method="snapshot")),
        ("snapshot_float32", dict(method="snapshot", precision="float32")),
    ):
        stats = _measure(lambda: results.__setitem__(
            label, run_success_curves(**common, **kwargs)
        ), repeats)
        out[label] = stats
    out["identical_rates"] = (
        results["recompute"].hw_model == results["snapshot"].hw_model
        and results["recompute"].hd_model == results["snapshot"].hd_model
    )
    out["speedup"] = {
        variant: round(out["legacy"]["min_s"] / out[variant]["min_s"], 2)
        for variant in ("recompute", "snapshot", "snapshot_float32")
    }
    return out


def bench_streamed(n_traces: int, chunk_size: int, jobs: int, repeats: int) -> dict:
    """Chunked streaming acquisition, serial and fan-out."""
    from repro.campaigns.engine import StreamingCampaign, clear_schedule_cache
    from repro.crypto.aes_asm import LAYOUT, round1_only_program
    from repro.experiments.figure3 import figure3_scope
    from repro.power.acquisition import random_inputs
    from repro.power.profile import cortex_a7_profile

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    program = round1_only_program(key)
    inputs = random_inputs(n_traces, mem_blocks={LAYOUT.state: 16}, seed=0xF16003)
    import os

    out = {"n_traces": n_traces, "chunk_size": chunk_size, "n_jobs": jobs}
    variants = [("serial", 1, "float64-exact"), ("serial_float32", 1, "float32")]
    if jobs > 1 and (os.cpu_count() or 1) > 1:
        # Fork fan-out only pays off with real cores; on a single-CPU
        # host it just adds pool startup and pickling overhead.
        variants.append((f"jobs{jobs}", jobs, "float64-exact"))
        variants.append((f"jobs{jobs}_float32", jobs, "float32"))
    else:
        out["fanout_skipped"] = f"cpu_count={os.cpu_count()}"
    for label, n_jobs, precision in variants:
        clear_schedule_cache()
        engine = StreamingCampaign(
            program,
            profile=cortex_a7_profile(),
            scope=figure3_scope(precision),
            entry="aes_round1",
            seed=1,
            chunk_size=chunk_size,
            jobs=n_jobs,
        )
        engine.compiled(inputs)

        def run(engine=engine):
            for _chunk in engine.stream(inputs):
                pass

        run()  # warm the workers/caches once
        stats = _measure(run, repeats)
        stats["traces_per_sec"] = _throughput(stats, n_traces)
        out[label] = stats
    return out


def bench_backends(
    n_traces: int, chunk_size: int, jobs_list: tuple[int, ...], repeats: int
) -> dict:
    """Execution backends head to head on the figure-3 float32 campaign.

    Streams the same campaign through every usable backend at every
    fan-out width, recording traces/s, each backend's ``describe()``
    provenance, and — the contract the whole matrix rests on — whether
    the acquired bytes are identical to serial.  A final section times a
    small design-space sweep against a **cold** persistent pool (workers
    must rebuild and recompile the campaign) and a **warm** one (their
    spec-keyed campaign caches already hold it).

    On a single-core host the parallel rows measure dispatch overhead,
    not speedup — the recorded ``cpu_count`` keeps that interpretable.
    """
    from repro.backends import (
        PoolBackend,
        cpu_count,
        fork_available,
        make_backend,
    )
    from repro.campaigns.engine import StreamingCampaign
    from repro.crypto.aes_asm import LAYOUT, round1_only_program
    from repro.experiments.figure3 import figure3_scope
    from repro.power.acquisition import random_inputs
    from repro.power.profile import cortex_a7_profile
    from repro.sweeps.campaign import SweepCampaign
    from repro.sweeps.spec import SweepSpec

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    program = round1_only_program(key)
    inputs = random_inputs(n_traces, mem_blocks={LAYOUT.state: 16}, seed=0xF16003)
    engine = StreamingCampaign(
        program,
        profile=cortex_a7_profile(),
        scope=figure3_scope("float32"),
        entry="aes_round1",
        seed=1,
        chunk_size=chunk_size,
    )
    engine.compiled(inputs)

    def stream_through(backend, jobs):
        return np.concatenate(
            [c.traces for c in engine.stream(inputs, jobs=jobs, backend=backend)]
        )

    out = {
        "n_traces": n_traces,
        "chunk_size": chunk_size,
        "cpu_count": cpu_count(),
        "campaign": {},
    }

    reference = stream_through("serial", 1)
    policies = ["serial"] + (["fork"] if fork_available() else []) + ["spawn"]
    for policy in policies:
        rows = {}
        widths = (1,) if policy == "serial" else jobs_list
        for jobs in widths:
            backend = make_backend(policy, jobs)
            with backend:
                identical = bool(
                    np.array_equal(stream_through(backend, jobs), reference)
                )
                stats = _measure(lambda: stream_through(backend, jobs), repeats)
            stats["traces_per_sec"] = _throughput(stats, n_traces)
            stats["identical_to_serial"] = identical
            stats["describe"] = backend.describe()
            rows[f"jobs{jobs}"] = stats
        out["campaign"][policy] = rows

    # Persistent pool: the same stream with workers kept warm.
    pool = PoolBackend(jobs=max(jobs_list))
    try:
        with pool:
            cold = _measure(lambda: stream_through(pool, pool.jobs), 1)
            warm = _measure(lambda: stream_through(pool, pool.jobs), repeats)
            identical = bool(np.array_equal(stream_through(pool, pool.jobs), reference))
        out["campaign"]["pool"] = {
            f"jobs{pool.jobs}": {
                "cold_s": cold["min_s"],
                **warm,
                "traces_per_sec": _throughput(warm, n_traces),
                "identical_to_serial": identical,
                "describe": pool.describe(),
            }
        }
    finally:
        pool.close()

    # Sweep wall-time against a cold vs a warm persistent pool.
    def sweep_once(backend):
        SweepCampaign(
            SweepSpec.from_cli(("dual_issue=true,false",)),
            n_traces=max(96, n_traces // 4),
            jobs=2,
            seed=0x5EEB,
            backend=backend,
        ).run()

    pool = PoolBackend(jobs=2)
    try:
        pool.start()
        start = time.perf_counter()
        sweep_once(pool)
        cold_s = time.perf_counter() - start
        warm = _measure(lambda: sweep_once(pool), repeats)
        out["sweep_pool"] = {
            "n_traces": max(96, n_traces // 4),
            "jobs": 2,
            "cold_s": round(cold_s, 6),
            "warm_s": warm["min_s"],
            "warm_speedup": round(cold_s / warm["min_s"], 2),
            "describe": pool.describe(),
        }
    finally:
        pool.close()
    return out


def bench_comms(
    n_traces: int, chunk_size: int, jobs_list: tuple[int, ...], repeats: int
) -> dict:
    """Chunk transports head to head: bytes over IPC and traces/s.

    Sizes what actually crosses the process boundary per chunk of the
    figure-3 float32 streamed campaign — ``len(pickle.dumps(payload))``
    of each worker-side encoder's real output — for the raw slim
    transport, the worker-folded sufficient statistics
    (:class:`~repro.campaigns.reduction.SboxCpaFold` and the extreme
    case, :class:`~repro.campaigns.reduction.SboxTTestFold`), and the
    shared-memory descriptor.  Then times all three transports through
    every usable backend at every fan-out width, asserting on the way
    that worker reduction reproduces the parent-side fold bit for bit
    and that shm-transported trace bytes are identical to serial.

    On a single-core host the parallel rows measure dispatch overhead,
    not speedup — the point of the comparison is the *relative* cost of
    the transports at equal work, and the IPC byte counts, which are
    machine-independent.
    """
    import pickle

    from repro.backends import cpu_count, fork_available, make_backend
    from repro.backends.base import ChunkTask, slim_payload
    from repro.backends.shm import ShmCodec, shm_available
    from repro.campaigns.engine import StreamingCampaign
    from repro.campaigns.reduction import SboxCpaFold, SboxTTestFold
    from repro.crypto.aes_asm import LAYOUT, round1_only_program
    from repro.experiments.figure3 import figure3_scope
    from repro.power.acquisition import random_inputs
    from repro.power.profile import cortex_a7_profile
    from repro.sca.models import hw_sbox_model

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    program = round1_only_program(key)
    inputs = random_inputs(n_traces, mem_blocks={LAYOUT.state: 16}, seed=0xF16003)
    engine = StreamingCampaign(
        program,
        profile=cortex_a7_profile(),
        scope=figure3_scope("float32"),
        entry="aes_round1",
        seed=1,
        chunk_size=chunk_size,
    )
    engine.compiled(inputs)

    cpa_fold = SboxCpaFold(byte_index=0)
    ttest_fold = SboxTTestFold(byte_index=0, key_byte=key[0])

    # -- bytes over IPC: the actual worker-side encoders on real chunks --
    serial_chunks = list(engine.stream(inputs))
    parent_path = serial_chunks[0].trace_set.path
    sizes = {"raw_pickle": [], "worker_fold_cpa": [], "worker_fold_ttest": []}
    shm_codec = ShmCodec(token="benchcomms0") if shm_available() else None
    if shm_codec is not None:
        sizes["shm_descriptor"] = []
    try:
        for chunk in serial_chunks:
            trace_set = chunk.trace_set
            task = ChunkTask(
                index=chunk.index,
                lo=chunk.start,
                hi=chunk.start + trace_set.traces.shape[0],
                scope_seed=0,
                trace_offset=chunk.start,
            )
            sizes["raw_pickle"].append(
                len(pickle.dumps(slim_payload(trace_set, parent_path)))
            )
            sizes["worker_fold_cpa"].append(
                len(pickle.dumps(cpa_fold.fold_chunk(task, trace_set)))
            )
            sizes["worker_fold_ttest"].append(
                len(pickle.dumps(ttest_fold.fold_chunk(task, trace_set)))
            )
            if shm_codec is not None:
                sizes["shm_descriptor"].append(
                    len(pickle.dumps(shm_codec.encode(task, trace_set, parent_path)))
                )
    finally:
        if shm_codec is not None:
            shm_codec.cleanup(len(serial_chunks))

    bytes_over_ipc = {
        mode: {
            "total": int(sum(values)),
            "per_chunk_max": int(max(values)),
            "per_trace": round(sum(values) / n_traces, 1),
        }
        for mode, values in sizes.items()
    }
    raw_total = bytes_over_ipc["raw_pickle"]["total"]
    bytes_over_ipc["reduction_vs_raw"] = {
        mode: round(raw_total / bytes_over_ipc[mode]["total"], 1)
        for mode in sizes
        if mode != "raw_pickle"
    }

    # -- reference results for the equivalence columns --
    reference_traces = np.concatenate([c.trace_set.traces for c in serial_chunks])
    parent_acc = cpa_fold.create()
    for chunk in serial_chunks:
        plaintexts = chunk.trace_set.inputs.mem_bytes[LAYOUT.state]
        parent_acc.update(
            chunk.trace_set.traces,
            lambda guess: hw_sbox_model(plaintexts, 0, guess),
        )
    reference_corr = parent_acc.result().correlations

    def consume(backend, jobs, transport=None):
        for _chunk in engine.stream(
            inputs, jobs=jobs, backend=backend, transport=transport
        ):
            pass

    def reduce_run(backend, jobs):
        return engine.reduce(inputs, cpa_fold, jobs=jobs, backend=backend)

    out = {
        "n_traces": n_traces,
        "chunk_size": chunk_size,
        "n_chunks": len(serial_chunks),
        "cpu_count": cpu_count(),
        "shm_available": shm_codec is not None,
        "bytes_over_ipc": bytes_over_ipc,
        "campaign": {},
    }

    policies = ["serial"] + (["fork"] if fork_available() else []) + ["spawn"]
    for policy in policies:
        widths = (1,) if policy == "serial" else jobs_list
        # A fresh spawn pool per run rebuilds the campaign from its
        # spec; fewer repeats keep the matrix affordable.
        policy_repeats = 2 if policy == "spawn" else repeats
        rows = {}
        for jobs in widths:
            modes = {}
            backend = make_backend(policy, jobs)
            with backend:
                consume(backend, jobs)  # warm the workers/caches once
                stats = _measure(lambda: consume(backend, jobs), policy_repeats)
                stats["traces_per_sec"] = _throughput(stats, n_traces)
                modes["raw"] = stats

                reduced = reduce_run(backend, jobs)
                identical = bool(
                    np.array_equal(
                        reduced.value.result().correlations, reference_corr
                    )
                )
                stats = _measure(lambda: reduce_run(backend, jobs), policy_repeats)
                stats["traces_per_sec"] = _throughput(stats, n_traces)
                stats["identical_to_parent_fold"] = identical
                modes["worker_fold"] = stats

                if policy != "serial" and shm_codec is not None:
                    shm_traces = np.concatenate(
                        [
                            c.trace_set.traces
                            for c in engine.stream(
                                inputs, jobs=jobs, backend=backend, transport="shm"
                            )
                        ]
                    )
                    identical = bool(np.array_equal(shm_traces, reference_traces))
                    stats = _measure(
                        lambda: consume(backend, jobs, transport="shm"),
                        policy_repeats,
                    )
                    stats["traces_per_sec"] = _throughput(stats, n_traces)
                    stats["identical_to_serial"] = identical
                    modes["shm"] = stats
            rows[f"jobs{jobs}"] = modes
        out["campaign"][policy] = rows
    return out


def bench_session_api(n_traces: int, repeats: int) -> dict:
    """The public façade end to end: ``Session.run`` vs the raw driver.

    Certifies the ``repro.api`` layer (request validation, capability
    negotiation, envelope wrapping, JSON serialization) costs nothing
    next to the campaign itself, and that the envelope the façade emits
    is schema-valid.
    """
    import json as json_mod

    from repro.api import Session, validate_envelope
    from repro.experiments.figure3 import run_figure3

    session = Session()
    out = {"n_traces": n_traces}
    out["facade"] = _measure(
        lambda: session.run("figure3", n_traces=n_traces), repeats
    )
    out["direct"] = _measure(lambda: run_figure3(n_traces=n_traces), repeats)
    out["overhead_pct"] = round(
        100.0 * (out["facade"]["min_s"] / out["direct"]["min_s"] - 1.0), 2
    )
    envelope = session.run("figure3", n_traces=n_traces)
    record = validate_envelope(envelope.to_json())
    out["envelope_bytes"] = len(json_mod.dumps(record))
    out["envelope_schema"] = record["schema"]
    return out


def bench_resilience(n_traces: int, repeats: int) -> dict:
    """Resilience layer cost: happy-path overhead and recovery latency.

    Streams the same figure-3 float32 campaign three ways — plain
    (historical dispatch), armed (retry budget + per-chunk validation,
    no faults), and through one injected transient fault (the full
    retry path) — and records the armed-vs-plain overhead.  The
    acceptance bar is under 2% on the fault-free path.
    """
    import tempfile

    from repro.backends.faults import FlakyTransform
    from repro.backends.resilience import RetryPolicy
    from repro.campaigns.engine import StreamingCampaign
    from repro.crypto.aes_asm import LAYOUT, round1_only_program
    from repro.experiments.figure3 import figure3_scope
    from repro.power.acquisition import random_inputs
    from repro.power.profile import cortex_a7_profile

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    program = round1_only_program(key)
    inputs = random_inputs(n_traces, mem_blocks={LAYOUT.state: 16}, seed=0xF16003)
    chunk = max(30, n_traces // 8)
    engine = StreamingCampaign(
        program,
        profile=cortex_a7_profile(),
        scope=figure3_scope("float32"),
        entry="aes_round1",
        seed=1,
        chunk_size=chunk,
    )
    engine.compiled(inputs)

    def run(**kwargs):
        for _chunk in engine.stream(inputs, **kwargs):
            pass

    run()  # warm the compiled schedule and buffers once
    out = {"n_traces": n_traces, "chunk_size": chunk}
    out["plain"] = _measure(run, repeats)
    # Zero backoff so the bench times the machinery, not sleeps.
    policy = RetryPolicy.from_retries(2, backoff_base=0.0)
    out["armed"] = _measure(lambda: run(retry=policy), repeats)
    out["happy_path_overhead_pct"] = round(
        100.0 * (out["armed"]["median_s"] / out["plain"]["median_s"] - 1.0), 2
    )
    out["overhead_budget_pct"] = 2.0

    # Recovery latency: one transient fault per run, absorbed by the
    # retry path (a fresh ledger per repeat re-arms the fault).
    with tempfile.TemporaryDirectory(prefix="bench-resilience-") as workdir:
        counter = {"n": 0}

        def faulted():
            counter["n"] += 1
            flaky = FlakyTransform(
                f"{workdir}/ledger-{counter['n']}", fail_times=1
            )
            run(power_transform=flaky, retry=policy)

        out["recovered"] = _measure(faulted, repeats)
    out["recovery_latency_s"] = round(
        max(0.0, out["recovered"]["median_s"] - out["plain"]["median_s"]), 6
    )
    return out


def bench_corpus(n_traces: int) -> dict:
    """Manifest-driven batch throughput: cold run vs store-served rerun.

    Expands a 3-workload x 2-config manifest (6 cells), runs it cold
    into a fresh artifact store, then reruns the identical manifest so
    every cell is served from disk.  Records cells/min for both passes
    and the warm speedup — the number the content-addressed store earns.
    """
    import tempfile

    from repro.corpus.manifest import GridEntry, Manifest
    from repro.corpus.runner import CorpusCampaign

    manifest = Manifest(
        name="bench",
        workloads=("present-round", "memcpy", "aes-sbox-tablefree"),
        configs=(
            GridEntry("baseline"),
            GridEntry("single-issue", overrides=(("dual_issue", False),)),
        ),
        budgets=(n_traces,),
    )

    def cells_per_min(result):
        return round(60.0 * len(result.cells) / result.seconds, 1)

    with tempfile.TemporaryDirectory(prefix="bench-corpus-") as store:
        cold = CorpusCampaign(manifest, store=store).run()
        warm = CorpusCampaign(manifest, store=store).run()

    return {
        "n_traces": n_traces,
        "n_cells": len(cold.cells),
        "workloads": list(manifest.workloads),
        "configs": [entry.name for entry in manifest.configs],
        "cold": {
            "seconds": round(cold.seconds, 6),
            "cells_per_min": cells_per_min(cold),
            "store_misses": cold.store_misses,
        },
        "warm": {
            "seconds": round(warm.seconds, 6),
            "cells_per_min": cells_per_min(warm),
            "store_hits": warm.store_hits,
        },
        "warm_speedup": round(cold.seconds / warm.seconds, 2),
        "all_cells_ok": cold.failed == 0 and warm.failed == 0,
        "warm_fully_store_served": warm.store_hits == len(warm.cells),
        "leakiest_cell": cold.ranked()[0].cell.name if cold.ranked() else None,
    }


def _start_service(spool: str, workers: int) -> tuple:
    """Launch ``repro serve`` on an ephemeral port; returns (proc, port)."""
    import os
    import subprocess

    try:
        os.unlink(os.path.join(spool, "port"))  # a restart must re-discover
    except FileNotFoundError:
        pass
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in ("src", env.get("PYTHONPATH")) if p)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--spool", spool, "--workers", str(workers),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )
    port_path = os.path.join(spool, "port")
    deadline = time.time() + 30
    while time.time() < deadline:
        if os.path.exists(port_path) and process.poll() is None:
            with open(port_path) as handle:
                return process, int(handle.read())
        if process.poll() is not None:
            raise RuntimeError("repro serve died at startup")
        time.sleep(0.05)
    process.kill()
    raise RuntimeError("repro serve never published its port")


def bench_service(
    total_requests: int,
    n_variants: int,
    n_traces: int,
    workers: int,
    concurrency: int,
    restart_jobs: int,
    restart_traces: int,
) -> dict:
    """The HTTP service under load, plus a mid-bench ``kill -9`` restart.

    Phase 1 drives a running ``repro serve`` with the zipf-ish request
    mix of :mod:`repro.service.loadgen` — sustained throughput, p50/p95
    latency split by cache disposition, dedup rate and the peak queue
    depth observed.  Phase 2 submits a batch of distinct slower jobs,
    SIGKILLs the whole service mid-batch, restarts it on the same spool
    and counts lost jobs (the acceptance number is zero: recovery
    re-queues every claimed-but-unfinished job and completes it).
    """
    import os
    import signal
    import subprocess
    import tempfile

    from repro.service.client import ServiceClient
    from repro.service.loadgen import run_load

    out: dict = {
        "workers": workers,
        "concurrency": concurrency,
        "mix": {
            "n_variants": n_variants,
            "n_traces": n_traces,
            "weights": "zipf (1/rank)",
        },
    }

    with tempfile.TemporaryDirectory(prefix="bench-service-") as spool_root:
        spool = os.path.join(spool_root, "spool")
        process, port = _start_service(spool, workers)
        try:
            # warm one variant so the run starts with a live worker Session
            ServiceClient("127.0.0.1", port).run(
                "figure3",
                {"schema": "repro.request/1", "n_traces": n_traces, "seed": 1000,
                 "precision": "float32"},
            )
            report = run_load(
                "127.0.0.1",
                port,
                total_requests=total_requests,
                concurrency=concurrency,
                n_variants=n_variants,
                n_traces=n_traces,
            )
            out["sustained"] = report.to_json()
            out["sustained"]["target_runs_per_min"] = 1000.0
            out["sustained"]["meets_target"] = report.runs_per_min >= 1000.0
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
                try:
                    process.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    process.kill()

    with tempfile.TemporaryDirectory(prefix="bench-service-restart-") as spool_root:
        spool = os.path.join(spool_root, "spool")
        process, port = _start_service(spool, workers)
        client = ServiceClient("127.0.0.1", port)
        submitted = []
        killed_cleanly = False
        try:
            for index in range(restart_jobs):
                body = client.submit(
                    "figure3",
                    {"schema": "repro.request/1", "n_traces": restart_traces,
                     "seed": 2000 + index},
                )
                submitted.append(body["id"])
            # let a worker claim work, then pull the plug mid-job
            deadline = time.time() + 60
            while time.time() < deadline:
                states = [client.status(job_id)["state"] for job_id in submitted]
                if any(state != "queued" for state in states):
                    break
                time.sleep(0.02)
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)
            killed_cleanly = True
        finally:
            if not killed_cleanly and process.poll() is None:
                process.kill()

        restart_started = time.time()
        process, port = _start_service(spool, workers)
        try:
            client = ServiceClient("127.0.0.1", port)
            lost = 0
            for job_id in submitted:
                envelope = client.result(job_id, wait=True, timeout=600)
                if envelope.get("error") or envelope.get("scenario") != "figure3":
                    lost += 1
            out["restart"] = {
                "jobs": restart_jobs,
                "n_traces": restart_traces,
                "lost_jobs": lost,
                "recovered_in_s": round(time.time() - restart_started, 3),
            }
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
                try:
                    process.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    process.kill()
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small sizes for CI")
    parser.add_argument("--out", default="BENCH_hotpath.json")
    parser.add_argument(
        "--section",
        choices=(
            "all", "hotpath", "backends", "resilience", "comms", "service",
            "corpus",
        ),
        default="all",
        help="which benchmark family to run (default: all)",
    )
    parser.add_argument(
        "--list-sections",
        action="store_true",
        help="print the available --section names and exit",
    )
    parser.add_argument(
        "--service-out",
        default="BENCH_service.json",
        help="output path of the HTTP-service benchmark",
    )
    parser.add_argument(
        "--comms-out",
        default="BENCH_comms.json",
        help="output path of the chunk-transport (comms) benchmark",
    )
    parser.add_argument(
        "--backends-out",
        default="BENCH_backends.json",
        help="output path of the execution-backend benchmark",
    )
    parser.add_argument(
        "--resilience-out",
        default="BENCH_resilience.json",
        help="output path of the resilience-layer benchmark",
    )
    parser.add_argument(
        "--corpus-out",
        default="BENCH_corpus.json",
        help="output path of the corpus batch benchmark",
    )
    parser.add_argument("--traces", type=int, default=None, help="figure3 batch size")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=4, help="streamed fan-out width")
    parser.add_argument(
        "--no-streamed", action="store_true", help="skip the streamed/fan-out bench"
    )
    args = parser.parse_args(argv)

    if args.list_sections:
        action = next(a for a in parser._actions if a.dest == "section")
        for name in action.choices:
            print(name)
        return 0

    n3 = args.traces or (600 if args.smoke else 3000)
    n4 = max(30, n3 // 30)
    repeats = args.repeats or (2 if args.smoke else 5)

    if args.section == "service":
        total = 80 if args.smoke else 400
        sreport = {
            "schema": "bench_service/1",
            "smoke": bool(args.smoke),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "benchmarks": {},
        }
        print(f"HTTP service under load ({total} requests) ...", flush=True)
        bench_started = time.time()
        sreport["benchmarks"]["service_zipf_mix"] = bench_service(
            total_requests=total,
            n_variants=8 if args.smoke else 12,
            n_traces=32,
            workers=1,
            concurrency=4,
            restart_jobs=3 if args.smoke else 6,
            restart_traces=2000 if args.smoke else 6000,
        )
        sreport["wall_s"] = round(time.time() - bench_started, 2)
        service_path = Path(args.service_out)
        service_path.write_text(json.dumps(sreport, indent=2) + "\n")
        print(f"wrote {service_path}")
        section = sreport["benchmarks"]["service_zipf_mix"]
        sustained = section["sustained"]
        print(
            f"  sustained: {sustained['runs_per_min']:.0f} runs/min "
            f"(target {sustained['target_runs_per_min']:.0f}, "
            f"met: {sustained['meets_target']}), "
            f"dedup rate {sustained['dedup_rate']:.2f}, "
            f"max queue depth {sustained['max_queue_depth']}"
            f"/{sustained['max_queue_bound']}"
        )
        latency = sustained["latency"]
        for disposition in ("all", "miss", "hit", "coalesced"):
            stats = latency.get(disposition)
            if stats:
                print(
                    f"  latency[{disposition:9s}] p50 {stats['p50_ms']:8.1f} ms   "
                    f"p95 {stats['p95_ms']:8.1f} ms   (n={stats['n']})"
                )
        if sustained.get("cache_hit_speedup"):
            print(f"  cache-hit speedup: {sustained['cache_hit_speedup']:.0f}x (p50 miss/hit)")
        restart = section["restart"]
        print(
            f"  restart: {restart['jobs']} jobs, kill -9 mid-run, "
            f"lost {restart['lost_jobs']}, recovered in {restart['recovered_in_s']:.1f}s"
        )
        return 0

    if args.section in ("all", "corpus"):
        ncorp = args.traces or (64 if args.smoke else 200)
        xreport = {
            "schema": "bench_corpus/1",
            "smoke": bool(args.smoke),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "benchmarks": {},
        }
        print(f"corpus batch (6 cells, n={ncorp} each) ...", flush=True)
        bench_started = time.time()
        xreport["benchmarks"]["corpus_batch"] = bench_corpus(ncorp)
        xreport["wall_s"] = round(time.time() - bench_started, 2)
        corpus_path = Path(args.corpus_out)
        corpus_path.write_text(json.dumps(xreport, indent=2) + "\n")
        print(f"wrote {corpus_path}")
        section = xreport["benchmarks"]["corpus_batch"]
        print(
            f"  cold: {section['cold']['cells_per_min']:.1f} cells/min -> "
            f"warm (store-served): {section['warm']['cells_per_min']:.1f} cells/min "
            f"({section['warm_speedup']:.0f}x)"
        )
        print(
            f"  all cells ok: {section['all_cells_ok']}, "
            f"warm fully store-served: {section['warm_fully_store_served']}, "
            f"leakiest: {section['leakiest_cell']}"
        )
        if args.section == "corpus":
            return 0

    if args.section in ("all", "backends"):
        nb = args.traces or (240 if args.smoke else 600)
        jobs_list = (1, 2) if args.smoke else (1, 2, 4, 8)
        chunk = max(30, nb // 8)
        breport = {
            "schema": "bench_backends/1",
            "smoke": bool(args.smoke),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "benchmarks": {},
        }
        print(
            f"execution backends (n={nb}, chunks of {chunk}, jobs={jobs_list}) ...",
            flush=True,
        )
        bench_started = time.time()
        breport["benchmarks"]["figure3_float32_backends"] = bench_backends(
            nb, chunk, jobs_list, max(2, repeats)
        )
        breport["wall_s"] = round(time.time() - bench_started, 2)
        backends_path = Path(args.backends_out)
        backends_path.write_text(json.dumps(breport, indent=2) + "\n")
        print(f"wrote {backends_path}")
        section = breport["benchmarks"]["figure3_float32_backends"]
        for policy, rows in section["campaign"].items():
            for label, stats in rows.items():
                print(
                    f"  {policy:6s} {label:6s} {stats['traces_per_sec']:8.0f} traces/s"
                    f"   identical_to_serial={stats['identical_to_serial']}"
                )
        sweep = section["sweep_pool"]
        print(
            f"  sweep via persistent pool: cold {sweep['cold_s']:.2f}s -> "
            f"warm {sweep['warm_s']:.2f}s  ({sweep['warm_speedup']:.2f}x)"
        )
        if args.section == "backends":
            return 0

    if args.section in ("all", "resilience"):
        nr = args.traces or (240 if args.smoke else 600)
        rreport = {
            "schema": "bench_resilience/1",
            "smoke": bool(args.smoke),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "benchmarks": {},
        }
        print(f"resilience layer (n={nr}, repeats={repeats}) ...", flush=True)
        bench_started = time.time()
        rreport["benchmarks"]["figure3_float32_resilience"] = bench_resilience(
            nr, max(2, repeats)
        )
        rreport["wall_s"] = round(time.time() - bench_started, 2)
        resilience_path = Path(args.resilience_out)
        resilience_path.write_text(json.dumps(rreport, indent=2) + "\n")
        print(f"wrote {resilience_path}")
        section = rreport["benchmarks"]["figure3_float32_resilience"]
        print(
            f"  happy path: plain {section['plain']['median_s']*1e3:.1f} ms -> "
            f"armed {section['armed']['median_s']*1e3:.1f} ms  "
            f"({section['happy_path_overhead_pct']:+.2f}% overhead, "
            f"budget {section['overhead_budget_pct']:.1f}%)"
        )
        print(
            f"  recovery: one transient fault {section['recovered']['median_s']*1e3:.1f} ms "
            f"(+{section['recovery_latency_s']*1e3:.1f} ms over plain)"
        )
        if args.section == "resilience":
            return 0

    if args.section in ("all", "comms"):
        nc = args.traces or (240 if args.smoke else 600)
        chunk = max(30, nc // 8)
        jobs_list = (2,) if args.smoke else (2, 4)
        creport = {
            "schema": "bench_comms/1",
            "smoke": bool(args.smoke),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "benchmarks": {},
        }
        print(
            f"chunk transports (n={nc}, chunks of {chunk}, jobs={jobs_list}) ...",
            flush=True,
        )
        bench_started = time.time()
        creport["benchmarks"]["figure3_float32_comms"] = bench_comms(
            nc, chunk, jobs_list, max(2, repeats)
        )
        creport["wall_s"] = round(time.time() - bench_started, 2)
        comms_path = Path(args.comms_out)
        comms_path.write_text(json.dumps(creport, indent=2) + "\n")
        print(f"wrote {comms_path}")
        section = creport["benchmarks"]["figure3_float32_comms"]
        ipc = section["bytes_over_ipc"]
        print(f"  bytes over IPC (n={section['n_traces']}, {section['n_chunks']} chunks):")
        for mode, stats in ipc.items():
            if mode == "reduction_vs_raw":
                continue
            factor = ipc["reduction_vs_raw"].get(mode)
            suffix = f"   {factor:.1f}x smaller than raw" if factor else ""
            print(f"    {mode:18s} {stats['total']:>12,} B total{suffix}")
        for policy, rows in section["campaign"].items():
            for label, modes in rows.items():
                for mode, stats in modes.items():
                    checks = [
                        f"{flag}={stats[flag]}"
                        for flag in ("identical_to_parent_fold", "identical_to_serial")
                        if flag in stats
                    ]
                    print(
                        f"  {policy:6s} {label:6s} {mode:11s} "
                        f"{stats['traces_per_sec']:8.0f} traces/s"
                        + ("   " + " ".join(checks) if checks else "")
                    )
        if args.section == "comms":
            return 0

    started = time.time()
    report = {
        "schema": "bench_hotpath/2",
        "smoke": bool(args.smoke),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "benchmarks": {},
    }
    print(f"figure3 acquisition (n={n3}, repeats={repeats}) ...", flush=True)
    report["benchmarks"]["figure3_round1_baremetal"] = bench_figure3(n3, repeats)
    print(f"figure4 windowed acquisition (n={n4}, repeats={repeats}) ...", flush=True)
    report["benchmarks"]["figure4_windowed_aes"] = bench_figure4_window(n4, repeats)
    print(f"capture chain (n={n3}, repeats={repeats}) ...", flush=True)
    report["benchmarks"]["capture"] = bench_capture(n3, repeats)
    print("attack curves (recompute vs snapshot) ...", flush=True)
    report["benchmarks"]["attack_curves"] = bench_attack_curves(
        args.smoke, max(1, repeats // 2)
    )
    print(f"session façade overhead (n={n4}, repeats={repeats}) ...", flush=True)
    report["benchmarks"]["session_api"] = bench_session_api(n4, repeats)
    if not args.no_streamed:
        chunk = max(100, n3 // 8)
        print(f"streamed figure3 (chunks of {chunk}, jobs={args.jobs}) ...", flush=True)
        report["benchmarks"]["figure3_streamed"] = bench_streamed(
            n3, chunk, args.jobs, max(2, repeats // 2)
        )

    report["wall_s"] = round(time.time() - started, 2)
    report["peak_rss_mb"] = round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
    )

    path = Path(args.out)
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {path}")

    for name, bench in report["benchmarks"].items():
        if "tape" in bench:
            print(f"\n{name} (n={bench['n_traces']}):")
            for stage, factor in bench["speedup"].items():
                tape_s = bench["tape"][stage]["min_s"]
                legacy_s = bench["legacy"][stage]["min_s"]
                print(
                    f"  {stage:10s}  {legacy_s*1e3:8.1f} ms -> {tape_s*1e3:8.1f} ms"
                    f"   {factor:5.2f}x  (legacy -> tape)"
                )
            for stage, factor in bench.get("speedup_float32", {}).items():
                tape_s = bench["tape"][stage]["min_s"]
                fast_s = bench["float32"][stage]["min_s"]
                print(
                    f"  {stage:10s}  {tape_s*1e3:8.1f} ms -> {fast_s*1e3:8.1f} ms"
                    f"   {factor:5.2f}x  (tape -> float32)"
                )
        elif name == "capture":
            exact = bench["float64_exact"]
            fast = bench["float32"]
            print(
                f"\ncapture (n={bench['n_traces']}): "
                f"{exact['min_s']*1e3:.1f} ms -> {fast['min_s']*1e3:.1f} ms  "
                f"{bench['speedup']:.2f}x "
                f"({fast['traces_per_sec']:.0f} traces/s float32)"
            )
        elif name == "session_api":
            print(
                f"\nsession_api (n={bench['n_traces']}): facade "
                f"{bench['facade']['min_s']*1e3:.1f} ms vs direct "
                f"{bench['direct']['min_s']*1e3:.1f} ms "
                f"({bench['overhead_pct']:+.2f}% overhead, "
                f"envelope {bench['envelope_bytes']} B, "
                f"schema {bench['envelope_schema']})"
            )
        elif name == "attack_curves":
            print(
                f"\nattack_curves ({bench['n_budgets']} budgets x "
                f"{bench['n_repeats']} resamplings, identical rates: "
                f"{bench['identical_rates']}):"
            )
            for variant, factor in bench["speedup"].items():
                print(
                    f"  legacy {bench['legacy']['min_s']:.2f} s -> "
                    f"{variant} {bench[variant]['min_s']:.2f} s   {factor:.2f}x"
                )
        else:
            serial = bench["serial"]["traces_per_sec"]
            line = f"\n{name}: serial {serial:.0f} traces/s"
            for key in bench:
                if key in ("serial", "n_traces", "chunk_size", "n_jobs", "fanout_skipped"):
                    continue
                if isinstance(bench[key], dict) and "traces_per_sec" in bench[key]:
                    line += f", {key} {bench[key]['traces_per_sec']:.0f} traces/s"
            print(line)
    print(f"\npeak RSS: {report['peak_rss_mb']} MB, total {report['wall_s']}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
