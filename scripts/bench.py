#!/usr/bin/env python
"""Hot-path benchmark harness: writes ``BENCH_hotpath.json``.

Measures the acquisition pipeline on the two paper campaigns that
dominate experiment wall-time — the Figure-3 bare-metal round-1 AES
campaign and the Figure-4 windowed full-AES campaign — with both
executors still present in the codebase:

* **tape** — the trace-compiled op tape + packed-value evaluator
  (``TraceCampaign(use_tape=True)``, the default);
* **legacy** — the instruction-dispatching vectorized executor + the
  per-component ``np.add.at`` evaluator (``use_tape=False``), i.e. the
  pre-tape hot path, kept as the semantic reference.

Because both paths run in one process on the same inputs, the emitted
before/after numbers are same-machine, same-moment comparisons.  The
JSON is tracked in-repo so the perf trajectory is visible per PR; CI
runs ``--smoke`` and uploads the result as an artifact.

Usage::

    PYTHONPATH=src python scripts/bench.py [--smoke] [--out BENCH_hotpath.json]
                                           [--traces N] [--repeats K] [--jobs J]
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path

import numpy as np


def _measure(fn, repeats: int) -> dict:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {
        "min_s": round(min(times), 6),
        "median_s": round(sorted(times)[len(times) // 2], 6),
        "repeats": repeats,
    }


def _stage_timings(campaign, inputs, repeats: int) -> dict:
    """Per-stage timings of one acquisition: execute, evaluate, capture."""
    from repro.power.scope import Oscilloscope

    compiled = campaign.compile_with(inputs)
    result = campaign._run_batch(inputs, compiled)
    power = compiled.leakage.evaluate(result.table, campaign.profile)

    stages = {
        "execute": _measure(lambda: campaign._run_batch(inputs, compiled), repeats),
        "evaluate": _measure(
            lambda: compiled.leakage.evaluate(result.table, campaign.profile), repeats
        ),
        "capture": _measure(
            lambda: Oscilloscope(campaign.scope_config, seed=5).capture(power), repeats
        ),
    }

    def hot():
        batch = campaign._run_batch(inputs, compiled)
        compiled.leakage.evaluate(batch.table, campaign.profile)

    stages["hot_path"] = _measure(hot, repeats)
    stages["acquire"] = _measure(lambda: campaign.acquire(inputs), repeats)
    return stages


def _throughput(stats: dict, n_traces: int) -> float:
    return round(n_traces / stats["min_s"], 1)


def bench_figure3(n_traces: int, repeats: int) -> dict:
    """Round-1 AES bare-metal campaign (the Figure-3 acquisition)."""
    from repro.crypto.aes_asm import LAYOUT, round1_only_program
    from repro.experiments.figure3 import figure3_scope
    from repro.power.acquisition import TraceCampaign, random_inputs
    from repro.power.profile import cortex_a7_profile

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    program = round1_only_program(key)
    inputs = random_inputs(n_traces, mem_blocks={LAYOUT.state: 16}, seed=0xF16003)

    out = {"n_traces": n_traces}
    for label, use_tape in (("tape", True), ("legacy", False)):
        campaign = TraceCampaign(
            program,
            profile=cortex_a7_profile(),
            scope=figure3_scope(),
            entry="aes_round1",
            seed=1,
            use_tape=use_tape,
        )
        stages = _stage_timings(campaign, inputs, repeats)
        stages["traces_per_sec"] = {
            "hot_path": _throughput(stages["hot_path"], n_traces),
            "acquire": _throughput(stages["acquire"], n_traces),
        }
        out[label] = stages
    out["speedup"] = {
        stage: round(
            out["legacy"][stage]["min_s"] / out["tape"][stage]["min_s"], 2
        )
        for stage in ("execute", "evaluate", "hot_path", "acquire")
    }
    return out


def bench_figure4_window(n_traces: int, repeats: int) -> dict:
    """Windowed full-AES campaign (the Figure-4 acquisition geometry)."""
    from repro.campaigns.engine import StreamingCampaign
    from repro.crypto.aes_asm import LAYOUT, aes128_program
    from repro.experiments.figure4 import _subbytes_window
    from repro.power.acquisition import TraceCampaign, random_inputs
    from repro.power.profile import cortex_a7_profile

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    program = aes128_program(key)
    inputs = random_inputs(n_traces, mem_blocks={LAYOUT.state: 16}, seed=0xF16004)
    prototype = StreamingCampaign(program, entry="aes_main", seed=0xF16004)
    window = _subbytes_window(program, prototype, inputs)

    out = {"n_traces": n_traces, "window_cycles": list(window)}
    for label, use_tape in (("tape", True), ("legacy", False)):
        campaign = TraceCampaign(
            program,
            profile=cortex_a7_profile(),
            entry="aes_main",
            window_cycles=window,
            seed=2,
            use_tape=use_tape,
        )
        stages = _stage_timings(campaign, inputs, repeats)
        stages["traces_per_sec"] = {
            "hot_path": _throughput(stages["hot_path"], n_traces),
            "acquire": _throughput(stages["acquire"], n_traces),
        }
        out[label] = stages
    out["speedup"] = {
        stage: round(
            out["legacy"][stage]["min_s"] / out["tape"][stage]["min_s"], 2
        )
        for stage in ("execute", "evaluate", "hot_path", "acquire")
    }
    return out


def bench_streamed(n_traces: int, chunk_size: int, jobs: int, repeats: int) -> dict:
    """Chunked streaming acquisition, serial and fan-out."""
    from repro.campaigns.engine import StreamingCampaign, clear_schedule_cache
    from repro.crypto.aes_asm import LAYOUT, round1_only_program
    from repro.experiments.figure3 import figure3_scope
    from repro.power.acquisition import random_inputs
    from repro.power.profile import cortex_a7_profile

    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    program = round1_only_program(key)
    inputs = random_inputs(n_traces, mem_blocks={LAYOUT.state: 16}, seed=0xF16003)
    import os

    out = {"n_traces": n_traces, "chunk_size": chunk_size, "n_jobs": jobs}
    variants = [("serial", 1)]
    if jobs > 1 and (os.cpu_count() or 1) > 1:
        # Fork fan-out only pays off with real cores; on a single-CPU
        # host it just adds pool startup and pickling overhead.
        variants.append((f"jobs{jobs}", jobs))
    else:
        out["fanout_skipped"] = f"cpu_count={os.cpu_count()}"
    for label, n_jobs in variants:
        clear_schedule_cache()
        engine = StreamingCampaign(
            program,
            profile=cortex_a7_profile(),
            scope=figure3_scope(),
            entry="aes_round1",
            seed=1,
            chunk_size=chunk_size,
            jobs=n_jobs,
        )
        engine.compiled(inputs)

        def run(engine=engine):
            for _chunk in engine.stream(inputs):
                pass

        run()  # warm the workers/caches once
        stats = _measure(run, repeats)
        stats["traces_per_sec"] = _throughput(stats, n_traces)
        out[label] = stats
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small sizes for CI")
    parser.add_argument("--out", default="BENCH_hotpath.json")
    parser.add_argument("--traces", type=int, default=None, help="figure3 batch size")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=4, help="streamed fan-out width")
    parser.add_argument(
        "--no-streamed", action="store_true", help="skip the streamed/fan-out bench"
    )
    args = parser.parse_args(argv)

    n3 = args.traces or (600 if args.smoke else 3000)
    n4 = max(30, n3 // 30)
    repeats = args.repeats or (2 if args.smoke else 5)

    started = time.time()
    report = {
        "schema": "bench_hotpath/1",
        "smoke": bool(args.smoke),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "benchmarks": {},
    }
    print(f"figure3 acquisition (n={n3}, repeats={repeats}) ...", flush=True)
    report["benchmarks"]["figure3_round1_baremetal"] = bench_figure3(n3, repeats)
    print(f"figure4 windowed acquisition (n={n4}, repeats={repeats}) ...", flush=True)
    report["benchmarks"]["figure4_windowed_aes"] = bench_figure4_window(n4, repeats)
    if not args.no_streamed:
        chunk = max(100, n3 // 8)
        print(f"streamed figure3 (chunks of {chunk}, jobs={args.jobs}) ...", flush=True)
        report["benchmarks"]["figure3_streamed"] = bench_streamed(
            n3, chunk, args.jobs, max(2, repeats // 2)
        )

    report["wall_s"] = round(time.time() - started, 2)
    report["peak_rss_mb"] = round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
    )

    path = Path(args.out)
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {path}")

    for name, bench in report["benchmarks"].items():
        if "speedup" in bench:
            print(f"\n{name} (n={bench['n_traces']}):")
            for stage, factor in bench["speedup"].items():
                tape_s = bench["tape"][stage]["min_s"]
                legacy_s = bench["legacy"][stage]["min_s"]
                print(
                    f"  {stage:10s}  {legacy_s*1e3:8.1f} ms -> {tape_s*1e3:8.1f} ms"
                    f"   {factor:5.2f}x"
                )
        else:
            serial = bench["serial"]["traces_per_sec"]
            line = f"\n{name}: serial {serial:.0f} traces/s"
            fanout_key = next(
                (k for k in bench if k.startswith("jobs") and k != "n_jobs"), None
            )
            if fanout_key is not None:
                line += f", {fanout_key} {bench[fanout_key]['traces_per_sec']:.0f} traces/s"
            print(line)
    print(f"\npeak RSS: {report['peak_rss_mb']} MB, total {report['wall_s']}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
