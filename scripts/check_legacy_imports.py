#!/usr/bin/env python
"""Deprecation gate: the repo's own code must not use the legacy API.

``RunOptions`` (and the ``supports_*`` Scenario booleans) exist only as
one-release compatibility shims for downstream code; everything under
``src/`` must be ported to ``repro.api.RunRequest`` / capability sets.
This gate fails CI when a reference sneaks back in outside the shim
sites themselves.

Usage:  python scripts/check_legacy_imports.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: The only src files allowed to mention the legacy names: the shim
#: definition site and the converter.
ALLOWED = {
    Path("src/repro/campaigns/registry.py"),
    Path("src/repro/campaigns/__init__.py"),
    Path("src/repro/api/request.py"),
}

LEGACY = re.compile(r"\bRunOptions\b|\bsupports_(?:chunking|jobs|precision|grid)\b")


def violations(root: Path) -> list[str]:
    found = []
    for path in sorted((root / "src").rglob("*.py")):
        relative = path.relative_to(root)
        if relative in ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if LEGACY.search(line):
                found.append(f"{relative}:{lineno}: {line.strip()}")
    return found


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    found = violations(root)
    if found:
        print("legacy RunOptions/supports_* references outside the shim sites:")
        for line in found:
            print(f"  {line}")
        print("port these to repro.api.RunRequest / Capability sets.")
        return 1
    print("deprecation gate clean: no legacy API references in src/.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
