"""Regenerate EXPERIMENTS.md from the scenario registry.

Every registered scenario runs through the public ``repro.api.Session``
façade; the document structure (sections, capability matrix, budgets)
is derived from the registry's own metadata, so a newly registered
scenario shows up without touching this script — only the optional
``PAPER_NOTES`` prose is hand-written.

Usage:  python scripts/generate_experiments_md.py [output-path] [--quick]

``--quick`` runs reduced trace budgets (a fast smoke regeneration);
the default uses each scenario's own paper-regime budget.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.api import Capability, Session
from repro.campaigns import registry

#: Hand-written paper context per scenario (prose only; everything
#: structural comes from the registry).
PAPER_NOTES = {
    "table1": (
        "**Paper:** 7x7 matrix of instruction-class pairs, measured through "
        "GPIO-timed CPI of 200-repetition microbenchmarks (hazard-free vs "
        "RAW-chained), CPU locked at 120 MHz."
    ),
    "figure2": (
        "**Paper:** two asymmetric ALUs (shifter + pipelined multiplier on "
        "one), fully pipelined LSU, 3 read / 2 write RF ports, 2-wide fetch, "
        "AGU in the Issue stage, nop never dual-issued."
    ),
    "table2": (
        "**Paper:** seven 2-4 instruction sequences with random operands; "
        "Pearson correlation against HW/HD models at >99.5% confidence "
        "locates the leaking structures (issue buses, ALU out, shifter "
        "buffer at ~1/10 magnitude, EX/WB buses with nop-reset boundary "
        "daggers, MDR, align buffer) and clears the RF read ports.\n\n"
        "**Interpretation notes** (the OCR of the paper's table loses its "
        "red/black colouring; the expected pattern is reconstructed from "
        "the prose of §4.1, as documented in DESIGN.md): operand-HW models "
        "at the ALU output are marked *dont-care* because an addition's "
        "result correlates with its own operands."
    ),
    "figure3": (
        "**Paper:** correlation peaks at the S-box load+store inside "
        "SubBytes, the byte load + three progressive shifts + store of "
        "ShiftRows, the MDR receiving a zero, and the MixColumns products "
        "and spills; store leakage strongest; peak magnitude ~0.1 at 100k "
        "traces."
    ),
    "figure4": (
        "**Paper:** AES as a userspace process on Ubuntu 16.04, Apache at "
        "1000 req/s saturating both cores; CPA with HD(consecutive SubBytes "
        "stores) on 100 traces (each avg of 16) succeeds with >99% "
        "confidence at ~0.01-0.02 correlation.\n\n"
        "**Documented deviation:** the paper's reported ~0.02 correlation "
        "is not Fisher-consistent with >99% distinguishability at N=100 "
        "(the null standard deviation alone is ~0.10 there); the "
        "reproduction preserves the operational claims — success at the "
        "paper's budget and a clear correlation drop under load — at a "
        "correspondingly higher absolute correlation."
    ),
    "ablations": (
        "**Paper (§4.2):** each contrast isolates one share-combining "
        "microarchitectural mechanism (operand swap, dual-issue adjacency, "
        "nop insertion, LSU remanence, parallel shares, scalar write port) "
        "and its suppression."
    ),
    "baselines": (
        "**Beyond the paper:** the per-instruction model family ([16, 19], "
        "ELMO-style) is measured to make exactly the two errors §4.2 "
        "predicts on a superscalar core."
    ),
    "success-curves": (
        "**Beyond the paper:** standard SCA evaluation — success rate vs "
        "trace budget for both attack models, quantifying \"succeeds with "
        "~100 averaged traces\"."
    ),
    "sweep": (
        "**Beyond the paper:** the methodology as a design-space tool — "
        "grid campaigns over PipelineConfig/ScopeConfig, ranked against "
        "the cortex-a7 baseline."
    ),
    "corpus": (
        "**Beyond the paper:** the evaluation generalized from one AES "
        "target to a registry of workloads (PRESENT, table-free S-box, "
        "masked round, straight-line memory code), batched by manifest "
        "and ranked leakiest-first; completed cells persist in a "
        "content-addressed artifact store (docs/corpus.md)."
    ),
}

#: Knobs a scenario needs in *every* regeneration (not budget-related).
#: The corpus scenario requires a manifest; the committed smoke
#: manifest keeps the regeneration self-contained.
REQUIRED_KNOBS = {
    "corpus": {"manifest": "manifests/smoke.yaml"},
}

#: Reduced budgets for --quick regenerations.
QUICK_BUDGETS = {
    "ablations": {"n_traces": 400},
    "baselines": {"n_traces": 400},
    "figure2": {"reps": 60},
    "figure3": {"n_traces": 800},
    "figure4": {"n_traces": 60},
    "success-curves": {"n_traces": 400},
    "sweep": {"n_traces": 200},
    "table1": {"reps": 60},
    "table2": {"n_traces": 800},
}


def block(text: str) -> str:
    return "```\n" + text.rstrip() + "\n```\n"


def capability_matrix() -> str:
    """The scenario x capability support table, from registry metadata."""
    columns = list(Capability)
    header = (
        "| scenario | default budget | "
        + " | ".join(str(c) for c in columns)
        + " |"
    )
    divider = "|---" * (len(columns) + 2) + "|"
    rows = []
    for scenario in registry.scenarios():
        if scenario.has(Capability.MANIFEST):
            budget = "per manifest cell"
        elif scenario.default_traces is not None:
            budget = f"{scenario.default_traces} traces"
        else:
            budget = f"{scenario.default_reps} reps"
        cells = " | ".join(
            "x" if scenario.has(capability) else " " for capability in columns
        )
        rows.append(f"| {scenario.name} | {budget} | {cells} |")
    return "\n".join([header, divider, *rows])


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default="EXPERIMENTS.md", type=Path)
    parser.add_argument(
        "--quick", action="store_true", help="reduced budgets (smoke regeneration)"
    )
    args = parser.parse_args(argv)

    session = Session()
    t_start = time.time()
    sections: list[str] = [
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Every registered scenario of Barenghi & Pelosi (DAC 2018), "
        "regenerated on the simulator through `repro.api.Session`. This "
        "file is produced by `python scripts/generate_experiments_md.py`"
        + (" with `--quick` budgets" if args.quick else "")
        + ".\n\n"
        "The paper's campaigns used 100k hardware traces per "
        "characterization and 100 averaged traces for the OS attack; the "
        "synthetic campaigns use 2-3k traces (same statistical regime, "
        "calibrated noise) and the paper's own 100-trace budget for "
        "Figure 4.\n\n"
        "## Scenario capabilities\n\n"
        "What each scenario's runner honors (a `RunRequest` knob outside "
        "this set raises `CapabilityError`):\n\n" + capability_matrix() + "\n"
    ]

    # Sections follow the paper's order (registry newcomers append at
    # the end).  table1 precedes figure2 so the figure2 inference can
    # reuse table1's measured CPI matrix instead of paying the 49-pair
    # microbenchmark campaign twice — the one scenario-specific wrinkle;
    # everything else is registry-generic.
    paper_order = (
        "table1", "figure2", "table2", "figure3", "figure4",
        "ablations", "baselines", "success-curves", "sweep",
    )
    rank = {name: position for position, name in enumerate(paper_order)}
    ordered = sorted(
        registry.scenarios(), key=lambda s: (rank.get(s.name, len(rank)), s.name)
    )
    envelopes: dict[str, object] = {}
    for scenario in ordered:
        knobs = dict(QUICK_BUDGETS.get(scenario.name, {})) if args.quick else {}
        knobs.update(REQUIRED_KNOBS.get(scenario.name, {}))
        print(f"running {scenario.name} ...", flush=True)
        if scenario.name == "figure2" and "table1" in envelopes:
            from repro.api import Envelope
            from repro.experiments.figure2 import run_figure2

            t0 = time.perf_counter()
            result = run_figure2(matrix=envelopes["table1"].result.matrix)
            envelope = Envelope(
                scenario=scenario.name,
                title=scenario.title,
                result=result,
                seconds=time.perf_counter() - t0,
            )
        else:
            envelope = session.run(scenario.name, **knobs)
        envelopes[scenario.name] = envelope
        verdict = {
            True: "matches the paper's shape checks",
            False: "MISMATCHES the paper's shape checks",
            None: "no paper shape check (beyond-paper scenario)",
        }[envelope.matches_paper]
        section = [f"## {scenario.title}\n", scenario.description + "\n"]
        if scenario.name in PAPER_NOTES:
            section.append(PAPER_NOTES[scenario.name] + "\n")
        section.append(
            f"**Measured ({envelope.seconds:.1f}s):** {verdict}.\n"
        )
        section.append(block(envelope.render()))
        sections.append("\n".join(section))

    # One demo lives below the scenario registry (no campaign of its
    # own): the masked S-box broken by a single operand swap.
    from repro.crypto.masked import run_masked_demo

    print("running masked-sbox demo ...", flush=True)
    masked = run_masked_demo(n_traces=400 if args.quick else 2000)
    sections.append(
        "## Extension: first-order masking broken by scheduling alone\n\n"
        "A table-masked S-box (ISA-level provably first-order secure) "
        "attacked with a standard first-order CPA; the two variants differ "
        "by a single commutative operand swap:\n\n" + block(masked.render())
    )

    sections.append(f"\n_Total regeneration time: {time.time()-t_start:.1f}s._\n")
    args.output.write_text("\n".join(sections))
    print(f"wrote {args.output} ({args.output.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
