"""Regenerate EXPERIMENTS.md by running every experiment end to end.

Usage:  python scripts/generate_experiments_md.py [output-path]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments.ablations import run_all_ablations
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


def block(text: str) -> str:
    return "```\n" + text.rstrip() + "\n```\n"


def main() -> None:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("EXPERIMENTS.md")
    sections: list[str] = []
    t_start = time.time()

    sections.append(
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Every table and figure of Barenghi & Pelosi (DAC 2018), regenerated "
        "on the simulator. This file is produced by "
        "`python scripts/generate_experiments_md.py`; the same checks run "
        "under `pytest benchmarks/ --benchmark-only`.\n\n"
        "The paper's campaigns used 100k hardware traces per characterization "
        "and 100 averaged traces for the OS attack; the synthetic campaigns "
        "use 2-3k traces (same statistical regime, calibrated noise) and the "
        "paper's own 100-trace budget for Figure 4.\n"
    )

    # ---- Table 1 -------------------------------------------------------
    t0 = time.time()
    table1 = run_table1(reps=200, pad_nops=100, with_hazards=True)
    sections.append(
        "## Table 1 — dual-issued instruction pairs\n\n"
        "**Paper:** 7x7 matrix of instruction-class pairs, measured through "
        "GPIO-timed CPI of 200-repetition microbenchmarks (hazard-free vs "
        "RAW-chained), CPU locked at 120 MHz.\n\n"
        f"**Measured ({time.time()-t0:.1f}s):** "
        f"{49 - len(table1.mismatches)}/49 cells agree"
        + (" — exact match.\n\n" if table1.matches_paper else
           f" — mismatches: {table1.mismatches}\n\n")
        + block(table1.render())
    )

    # ---- Figure 2 ------------------------------------------------------
    t0 = time.time()
    figure2 = run_figure2(matrix=table1.matrix)
    sections.append(
        "## Figure 2 — pipeline structure deduced from CPI\n\n"
        "**Paper:** two asymmetric ALUs (shifter + pipelined multiplier on "
        "one), fully pipelined LSU, 3 read / 2 write RF ports, 2-wide fetch, "
        "AGU in the Issue stage, nop never dual-issued.\n\n"
        f"**Measured ({time.time()-t0:.1f}s):** "
        + ("every deduction matches.\n\n" if figure2.matches_paper
           else f"disagreements: {figure2.disagreements}\n\n")
        + block(figure2.render())
    )

    # ---- Table 2 -------------------------------------------------------
    t0 = time.time()
    table2 = run_table2(n_traces=3000)
    sections.append(
        "## Table 2 — leakage characterization micro-benchmarks\n\n"
        "**Paper:** seven 2-4 instruction sequences with random operands; "
        "Pearson correlation against HW/HD models at >99.5% confidence "
        "locates the leaking structures (issue buses, ALU out, shifter "
        "buffer at ~1/10 magnitude, EX/WB buses with nop-reset boundary "
        "daggers, MDR, align buffer) and clears the RF read ports.\n\n"
        "**Interpretation notes** (the OCR of the paper's table loses its "
        "red/black colouring; the expected pattern below is reconstructed "
        "from the prose of §4.1, as documented in DESIGN.md): operand-HW "
        "models at the ALU output are marked *dont-care* because an "
        "addition's result correlates with its own operands.\n\n"
        f"**Measured ({time.time()-t0:.1f}s, 3000 traces):** "
        + ("the full red/black pattern matches; " if table2.matches_paper
           else "MISMATCHES: " + "; ".join(table2.disagreements()) + "; ")
        + f"shifter/ALU magnitude ratio {table2.shift_magnitude_ratio:.2f} "
        "(paper: about 1/10).\n\n"
        + block(table2.render())
    )

    # ---- Figure 3 ------------------------------------------------------
    t0 = time.time()
    figure3 = run_figure3(n_traces=3000)
    peak = float(np.max(np.abs(figure3.timecourse)))
    sections.append(
        "## Figure 3 — CPA vs time, bare metal, HW(SubBytes out)\n\n"
        "**Paper:** correlation peaks at the S-box load+store inside "
        "SubBytes, the byte load + three progressive shifts + store of "
        "ShiftRows, the MDR receiving a zero, and the MixColumns products "
        "and spills; store leakage strongest; peak magnitude ~0.1 at 100k "
        "traces.\n\n"
        f"**Measured ({time.time()-t0:.1f}s, 3000 traces):** all shape "
        f"checks pass; global peak |r| = {peak:.3f}; per-primitive peaks: "
        + ", ".join(
            f"{name} {figure3.segment_peak(name):.3f}"
            for name in ("ARK", "SB", "ShR", "MC")
        )
        + ".\n\n"
        + block(figure3.render())
    )

    # ---- Figure 4 ------------------------------------------------------
    t0 = time.time()
    figure4 = run_figure4(n_traces=100)
    sections.append(
        "## Figure 4 — CPA under a loaded Linux system\n\n"
        "**Paper:** AES as a userspace process on Ubuntu 16.04, Apache at "
        "1000 req/s saturating both cores; CPA with HD(consecutive SubBytes "
        "stores) on 100 traces (each avg of 16) succeeds with >99% "
        "confidence at ~0.01-0.02 correlation.\n\n"
        f"**Measured ({time.time()-t0:.1f}s, 100 traces x16 avg):** "
        f"rank-0 recovery with best-vs-second confidence "
        f"{figure4.margin_confidence:.4f}; peak |r| {figure4.peak_loaded:.3f} "
        f"under load vs {figure4.peak_bare:.3f} bare metal "
        f"({figure4.peak_bare / max(figure4.peak_loaded, 1e-9):.1f}x "
        "reduction); without the 16x averaging the true key ranks "
        f"{figure4.no_averaging_rank}.\n\n"
        "**Documented deviation:** the paper's reported ~0.02 correlation "
        "is not Fisher-consistent with >99% distinguishability at N=100 "
        "(the null standard deviation alone is ~0.10 there); the "
        "reproduction preserves the operational claims — success at the "
        "paper's budget and a clear correlation drop under load — at a "
        "correspondingly higher absolute correlation.\n\n"
        + block(figure4.render())
    )

    # ---- Ablations -----------------------------------------------------
    t0 = time.time()
    ablations = run_all_ablations(n_traces=2000)
    rows = "\n".join(
        f"| {r.name} | {abs(r.corr_with):.3f} | {abs(r.corr_without):.3f} | "
        f"{r.threshold:.3f} | {'demonstrated' if r.demonstrated else 'NOT demonstrated'} |"
        for r in ablations
    )
    sections.append(
        "## Section 4.2 ablations — one mechanism per contrast\n\n"
        f"({time.time()-t0:.1f}s, 2000 traces each)\n\n"
        "| ablation | leak present \\|r\\| | leak absent \\|r\\| | threshold | verdict |\n"
        "|---|---|---|---|---|\n" + rows + "\n\n"
        + "\n\n".join(block(r.render()) for r in ablations)
    )

    # ---- Extensions ------------------------------------------------------
    t0 = time.time()
    from repro.crypto.masked import run_masked_demo
    from repro.experiments.baseline_models import run_baseline_comparison

    baselines = run_baseline_comparison(n_traces=2000)
    masked = run_masked_demo(n_traces=2000)
    sections.append(
        "## Extensions beyond the paper's evaluation\n\n"
        "### Instruction-level grey-box model vs microarchitecture-aware\n\n"
        "The per-instruction model family ([16, 19], ELMO-style) is measured "
        "to make exactly the two errors §4.2 predicts on a superscalar core "
        f"({time.time()-t0:.1f}s):\n\n" + block(baselines.render())
        + "\n### First-order masking broken by scheduling alone\n\n"
        "A table-masked S-box (ISA-level provably first-order secure) "
        "attacked with a standard first-order CPA; the two variants differ "
        "by a single commutative operand swap:\n\n" + block(masked.render())
    )

    sections.append(
        f"\n_Total regeneration time: {time.time()-t_start:.1f}s._\n"
    )
    out_path.write_text("\n".join(sections))
    print(f"wrote {out_path} ({out_path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
