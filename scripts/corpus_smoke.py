"""CI corpus smoke: batch isolation and the artifact store, end to end.

Three phases, all through the real ``repro corpus run`` front-end on
the committed manifests:

1. **cold batch** — ``manifests/smoke.yaml`` runs end to end into a
   fresh artifact store; every cell must complete (exit 0) and miss
   the store;
2. **warm batch** — the identical manifest again, same store: every
   cell must be served from disk (100% hits, zero misses) and the
   metrics must match the cold run bit for bit;
3. **poisoned batch** — ``manifests/poisoned.yaml`` carries one config
   whose override names a nonexistent pipeline field.  The batch must
   exit 1, record the error against exactly that cell, and still
   complete every other cell.

The structured per-phase report is written to the ``--out`` path so CI
can upload it as an artifact.

Usage: PYTHONPATH=src python scripts/corpus_smoke.py [--out corpus_report.json]
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

from repro.corpus.cli import main as corpus_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SMOKE = str(REPO_ROOT / "manifests" / "smoke.yaml")
POISONED = str(REPO_ROOT / "manifests" / "poisoned.yaml")


def run_batch(manifest: str, store: str) -> tuple[int, dict]:
    """One ``repro corpus run --format json`` invocation, parsed."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = corpus_main(
            ["run", manifest, "--store", store, "--format", "json"]
        )
    return code, json.loads(buffer.getvalue())


def stable_metrics(record: dict) -> str:
    """The per-cell metrics alone, minus volatile wall-clock fields."""
    cells = [
        {"cell": cell["cell"], "metrics": cell.get("metrics")}
        for cell in record["cells"]
    ]
    return json.dumps(cells, sort_keys=True)


def phase_cold(store: str) -> dict:
    code, record = run_batch(SMOKE, store)
    n_cells = len(record["cells"])
    assert code == 0, f"cold batch exited {code}"
    assert record["errors"] == {}, f"cold batch failed: {record['errors']}"
    assert record["store"]["misses"] == n_cells, "cold batch hit the store"
    assert n_cells == 3, f"smoke.yaml must expand to 3 cells, got {n_cells}"
    return {
        "exit_code": code,
        "cells": n_cells,
        "store_misses": record["store"]["misses"],
        "ranking": record["ranking"],
        "metrics": stable_metrics(record),
    }


def phase_warm(store: str, cold: dict) -> dict:
    code, record = run_batch(SMOKE, store)
    assert code == 0, f"warm batch exited {code}"
    assert record["store"]["hits"] == cold["cells"], "warm batch not fully served"
    assert record["store"]["misses"] == 0, "warm batch re-executed a cell"
    assert stable_metrics(record) == cold["metrics"], (
        "store-served metrics diverged from the cold run"
    )
    return {
        "exit_code": code,
        "store_hits": record["store"]["hits"],
        "identical_metrics": True,
    }


def phase_poisoned(store: str) -> dict:
    code, record = run_batch(POISONED, store)
    assert code == 1, f"poisoned batch exited {code}, wanted 1"
    errors = record["errors"]
    assert list(errors) == ["memcpy/bad/default/n48"], (
        f"wrong failure set: {sorted(errors)}"
    )
    assert "no_such_pipeline_field" in errors["memcpy/bad/default/n48"]
    completed = [c for c in record["cells"] if c.get("error") is None]
    assert len(completed) == len(record["cells"]) - 1, (
        "a healthy cell was dragged down by the poisoned one"
    )
    return {
        "exit_code": code,
        "failed_cells": sorted(errors),
        "completed_cells": len(completed),
        "error_recorded": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="corpus_report.json")
    args = parser.parse_args(argv)

    report: dict = {"schema": "corpus_smoke/1", "phases": {}}
    with tempfile.TemporaryDirectory(prefix="corpus-smoke-") as store:
        print("phase 1: cold batch (manifests/smoke.yaml) ...", flush=True)
        cold = phase_cold(store)
        report["phases"]["cold"] = cold
        print(f"  {cold['cells']} cells ok, {cold['store_misses']} store misses")

        print("phase 2: warm batch (same store) ...", flush=True)
        warm = phase_warm(store, cold)
        report["phases"]["warm"] = warm
        print(f"  {warm['store_hits']} hits, metrics identical to cold run")

        print("phase 3: poisoned batch (manifests/poisoned.yaml) ...", flush=True)
        poisoned = phase_poisoned(store)
        report["phases"]["poisoned"] = poisoned
        print(
            f"  exit 1, {poisoned['completed_cells']} cells completed, "
            f"failed: {poisoned['failed_cells']}"
        )

    report["phases"]["cold"].pop("metrics")  # internal comparison detail
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    print("corpus smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
